#pragma once

#include <cstddef>
#include <cstdint>

#include "zc/sim/time.hpp"

namespace zc::apu {

/// Whether the modeled node is an APU (CPU+GPU on one socket sharing one
/// physical HBM storage) or a classic discrete-GPU node with separate host
/// and device memories behind a PCIe-style link.
enum class MachineKind {
  ApuMi300a,
  DiscreteGpu,
};

[[nodiscard]] constexpr const char* to_string(MachineKind k) {
  switch (k) {
    case MachineKind::ApuMi300a:
      return "MI300A APU";
    case MachineKind::DiscreteGpu:
      return "discrete GPU";
  }
  return "?";
}

/// Node topology: how many of each shared resource exists. A multi-socket
/// APU card (§III-A of the paper) composes `sockets` identical sockets;
/// each socket's GPU is a separate OpenMP device with its own kernel
/// slots, SDMA engines, and driver instance, and can access the other
/// socket's HBM at a penalty.
struct Topology {
  int sockets = 1;             ///< APU sockets on the card
  int cpu_cores = 24;          ///< host cores per socket
  int xcds = 6;                ///< accelerated compute dies per socket
  int gpu_kernel_slots = 16;   ///< concurrent kernels per socket GPU
  int sdma_engines = 2;        ///< async copy engines per socket
  std::uint64_t hbm_bytes = 128ULL << 30;  ///< HBM capacity per socket
};

/// Cost model constants. Every modeled operation draws its duration from
/// here; nothing in the runtime hard-codes a latency. The MI300A defaults
/// are order-of-magnitude figures from public literature and the paper's
/// own quantities (e.g. XNACK service dominated by 2 MB page migration,
/// `svm_attributes_set` costing a syscall plus per-page insertion). The
/// calibration of workload proxies against the paper's ratios lives with
/// the workloads, not here.
struct CostParams {
  // -- data movement ----------------------------------------------------
  /// Effective bandwidth of a blocking runtime DMA copy between two
  /// locations of the same HBM storage (APU "HBM-to-HBM" copy), including
  /// driver and runtime inefficiencies — far below raw HBM bandwidth.
  double copy_bandwidth_bytes_per_s = 24e9;
  /// Fixed CPU-side cost to submit one async copy.
  sim::Duration copy_setup = sim::Duration::from_us(3.0);
  /// Minimum on-engine time of any copy (command processing).
  sim::Duration copy_min = sim::Duration::from_us(2.0);

  // -- kernel execution --------------------------------------------------
  /// CPU-side cost to build and enqueue one kernel dispatch packet.
  sim::Duration kernel_dispatch_cpu = sim::Duration::from_us(1.5);
  /// GPU-side fixed launch/teardown latency per kernel.
  sim::Duration kernel_launch_latency = sim::Duration::from_us(3.0);
  /// CPU-side fixed overhead of one completion-signal wait call.
  sim::Duration signal_wait_overhead = sim::Duration::from_us(0.4);
  /// OpenMP runtime bookkeeping per map entry (present-table lookup etc.).
  sim::Duration map_bookkeeping = sim::Duration::from_us(0.25);
  /// GPU streaming bandwidth used by the kernel cost model.
  double gpu_stream_bandwidth_bytes_per_s = 2.6e12;
  /// Multiplier on kernel compute time when the process runs with XNACK
  /// enabled (HSA_XNACK=1): retry-capable code generation and fault-capable
  /// memory paths cost a small, uniform percentage.
  double xnack_kernel_slowdown = 1.02;

  // -- memory allocation -------------------------------------------------
  /// Fixed cost of a ROCr memory-pool allocation (driver round trip).
  sim::Duration pool_alloc_base = sim::Duration::from_us(12.0);
  /// Per-page cost of creating (allocating, zeroing) and bulk-mapping one
  /// page on the efficient driver paths: ROCr pool allocation and host
  /// prefault of not-yet-resident memory. Bulk population is the paper's
  /// "GPU TLB Bulk Page Faulting" lesson — an order of magnitude cheaper
  /// than the page-by-page demand-fault path, but still the dominant cost
  /// of GB-scale allocations.
  sim::Duration bulk_page_populate = sim::Duration::from_us(100.0);
  /// Fixed cost of freeing a pool allocation...
  sim::Duration pool_free_base = sim::Duration::from_us(6.0);
  /// ...plus per-page teardown (unmap, TLB shootdown).
  sim::Duration pool_free_per_page = sim::Duration::from_us(10.0);
  /// Cost of an OS allocation (mmap); pages are created lazily.
  sim::Duration os_alloc_base = sim::Duration::from_us(1.5);
  /// Cost of an OS free.
  sim::Duration os_free_base = sim::Duration::from_us(1.0);
  /// CPU first-touch cost per page (page zeroing at host streaming rate).
  sim::Duration host_touch_per_page_2mb = sim::Duration::from_us(5.0);

  // -- unified-memory protocols -------------------------------------------
  /// Cost of servicing one GPU page fault via XNACK-replay when the page is
  /// already resident in host memory (interrupt, host page-table walk, GPU
  /// page-table/TLB update).
  sim::Duration xnack_fault_resident = sim::Duration::from_us(10.0);
  /// Added when the faulting page is not yet CPU-resident: the demand-fault
  /// path must allocate and zero the page, one interrupt-driven page at a
  /// time, before it can be mapped. This is what makes GPU-side first-touch
  /// initialization of OS-allocated memory (the paper's 452.ep pattern) so
  /// much slower than bulk population.
  sim::Duration page_materialize = sim::Duration::from_us(900.0);
  /// Base cost of one host-issued `svm_attributes_set` prefault syscall.
  sim::Duration prefault_syscall_base = sim::Duration::from_us(1.2);
  /// Added per CPU-resident page newly inserted into the GPU page table by
  /// a prefault (mapping only; the page already exists).
  sim::Duration prefault_insert_per_page = sim::Duration::from_us(9.0);
  /// Added per prefaulted page that was NOT yet CPU-resident: the prefetch
  /// path creates it in bulk — cheaper than a pool allocation's full
  /// bookkeeping, and far cheaper than demand materialization.
  sim::Duration prefault_populate_per_page = sim::Duration::from_us(40.0);
  /// Added per already-present page a prefault merely verifies.
  sim::Duration prefault_check_per_page = sim::Duration::from_us(0.05);

  // -- GPU TLB -------------------------------------------------------------
  /// Translation entries the GPU TLB holds (per 2 MB translation).
  std::uint32_t tlb_entries = 4096;
  /// Cost of one page-table walk on a TLB miss (page already present).
  sim::Duration tlb_walk = sim::Duration::from_us(0.12);

  // -- multi-socket (NUMA) --------------------------------------------------
  /// Kernel-compute multiplier when a kernel's data is homed on another
  /// socket's HBM (cross-socket fabric bandwidth/latency penalty). With the
  /// fabric off this applies flat to any launch touching remote data; with
  /// the fabric on it is scaled by the remote byte fraction and the width
  /// of the link actually crossed.
  double remote_memory_penalty = 1.6;
  /// Bandwidth factor for DMA copies that cross the socket fabric
  /// (legacy single-link model, `fabric::FabricMode::Off` only).
  double remote_copy_bandwidth_factor = 0.55;

  // -- Infinity Fabric (xGMI) links (fabric::FabricMode != Off) -------------
  /// Per-direction bandwidth of a wide xGMI bundle (socket pairs whose ids
  /// differ in one bit). 13.2 GB/s = 0.55 x the local copy bandwidth, so
  /// the wide path agrees with the legacy remote-copy factor.
  double xgmi_wide_bandwidth_bytes_per_s = 13.2e9;
  /// Per-direction bandwidth of the narrow diagonal bundle — the 4-APU
  /// asymmetry the Inter-APU paper measures.
  double xgmi_narrow_bandwidth_bytes_per_s = 6.0e9;
  /// Fixed per-transfer latency of one link hop.
  sim::Duration xgmi_link_latency = sim::Duration::from_us(1.5);
  /// Driver cost to migrate one page between sockets (unmap, remap, TLB
  /// shootdown on both sides); the data movement itself is additionally
  /// priced over the link at its bandwidth.
  sim::Duration page_migrate_per_page = sim::Duration::from_us(25.0);

  // -- memory pressure / UPM dynamics --------------------------------------
  /// Driver cost per page of evicting a cold zero-copy page from HBM to the
  /// DDR spill tier (unmap, TLB shootdown, residency bookkeeping); the
  /// writeback data movement is additionally priced on the SDMA engine at
  /// the copy bandwidth.
  sim::Duration evict_per_page = sim::Duration::from_us(18.0);
  /// GPU-fault cost per DDR-spilled page promoted back to HBM on access
  /// (added on top of the normal fault service: the data must move back
  /// before the translation can be installed).
  sim::Duration promote_per_page = sim::Duration::from_us(30.0);
  /// Driver cost of splitting one 2 MB span into 4 KB PTEs (THP=dynamic).
  sim::Duration thp_split_per_span = sim::Duration::from_us(12.0);
  /// Driver cost of collapsing a re-homogenized span back to 2 MB.
  sim::Duration thp_collapse_per_span = sim::Duration::from_us(20.0);
  /// Fault-service multiplier when the faulting page sits in a split span
  /// (4 KB servicing: more interrupts per byte, deeper walks).
  double thp_split_fault_factor = 2.5;
  /// Extra TLB walks charged per split span touched by a kernel (512 4 KB
  /// translations where one 2 MB entry used to reach).
  double thp_split_tlb_factor = 4.0;
  /// Driver cost of one access-counter sample batch consult at dispatch.
  sim::Duration counter_sample = sim::Duration::from_us(0.8);

  // -- queue error handling -------------------------------------------------
  /// Driver-side cost of tearing down an HSA queue whose in-flight
  /// operation the watchdog aborted (drain, CP reset, unmap doorbell).
  sim::Duration queue_teardown = sim::Duration::from_us(15.0);
  /// Driver-side cost of rebuilding the queue before replaying.
  sim::Duration queue_rebuild = sim::Duration::from_us(25.0);

  // -- discrete-GPU specifics (MachineKind::DiscreteGpu only) --------------
  /// Host<->device link bandwidth (PCIe-style) for discrete nodes.
  double pcie_bandwidth_bytes_per_s = 12e9;
};

/// Tuning knobs of the Adaptive Maps policy engine (`zc::adapt`). They are
/// calibration constants in the same sense as `CostParams`: the policy's
/// decisions are derived from the cost model, and these only control how
/// eagerly it revisits them and how much CPU time the bookkeeping itself
/// charges.
struct AdaptParams {
  /// A cached decision is re-evaluated only after this many further maps of
  /// the same host range (and never while the range is actively mapped).
  /// This is the hysteresis window that makes flip-flopping impossible.
  std::uint32_t hysteresis_maps = 4;
  /// On re-evaluation, switch away from the cached decision only when its
  /// predicted cost exceeds the best alternative by this factor.
  double switch_margin = 1.25;
  /// Decision-cache capacity per device; beyond it the engine evicts the
  /// stalest inactive entry so long-running programs stay bounded.
  std::size_t max_cache_entries = 65536;
  /// CPU-side cost of one fresh policy evaluation (feature gather + cost
  /// prediction), charged by the runtime inside `begin_one`.
  sim::Duration eval_cost = sim::Duration::from_us(0.05);
  /// CPU-side cost of one decision-cache hit on the `begin_one` hot path.
  sim::Duration cache_hit_cost = sim::Duration::from_us(0.02);
  /// Multiplier applied to the DmaCopy cost prediction per unit of service
  /// tenant pressure (`RegionFeatures::tenant_pressure` in [0, 1]): at a
  /// full admission budget DmaCopy reads 1 + surcharge times its base
  /// prediction, steering shared devices away from fresh pool allocations
  /// that crowd co-resident tenants' zero-copy pages.
  double tenant_pressure_surcharge = 4.0;
};

/// Degraded-mode policy knobs: how hard the runtime tries before giving a
/// region up. Like `AdaptParams`, these are calibration constants — the
/// degradation *paths* (OOM -> zero-copy fallback, transient prefault
/// error -> exponential backoff -> XNACK reliance, copy error -> one
/// retry -> structured failure) are fixed in the runtime.
struct DegradeParams {
  /// Retries of a `svm_attributes_set` that failed with EINTR/EBUSY.
  int prefault_max_retries = 4;
  /// Virtual-time backoff before the first prefault retry...
  sim::Duration prefault_backoff_base = sim::Duration::from_us(50.0);
  /// ...multiplied by this factor before each further retry.
  double prefault_backoff_factor = 2.0;
  /// Resubmissions of an async copy whose signal completed with an error.
  int copy_max_retries = 1;
  /// Replays of an operation the watchdog aborted (recover mode) before
  /// the region is failed; also bounds resubmissions of a stalled copy.
  int watchdog_max_replays = 2;
  /// Watchdog trips / degraded-mode events within `breaker_window` that
  /// open a device's circuit breaker.
  int breaker_trip_threshold = 3;
  /// Sliding virtual-time window the breaker counts trips over.
  sim::Duration breaker_window = sim::Duration::milliseconds(50);
  /// Quiet period after which an open breaker half-opens; a further equal
  /// quiet period with no trips closes it again.
  sim::Duration breaker_cooldown = sim::Duration::milliseconds(20);
  /// HBM fill fraction at which watermark reclaim starts
  /// (`OMPX_APU_PRESSURE=watermarks` only).
  double evict_high_watermark = 0.90;
  /// Fill fraction reclaim drives the socket back down to.
  double evict_low_watermark = 0.80;
  /// Most pages one reclaim pass may spill (bounds the stall any single
  /// allocation or dispatch absorbs; remaining pressure waits for the
  /// next pass).
  std::uint64_t evict_max_batch_pages = 512;
};

/// MI300A-flavoured defaults.
[[nodiscard]] CostParams mi300a_costs();

/// Discrete-GPU-flavoured defaults: copies cross a PCIe-style link and
/// device allocations live in dedicated VRAM.
[[nodiscard]] CostParams discrete_gpu_costs();

}  // namespace zc::apu
