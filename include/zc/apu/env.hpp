#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "zc/fabric/fabric.hpp"
#include "zc/sim/time.hpp"

namespace zc::apu {

/// Raised by `RunEnvironment::from_env` when a recognized environment
/// variable carries a value the runtime cannot interpret. Real runtimes
/// silently coerce such typos into "off"; the simulator refuses them so
/// configuration experiments can't accidentally run the wrong setup.
class EnvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The three states of `OMPX_APU_MAPS`: off, the footnote-1 opt-in that
/// forces implicit zero-copy handling on discrete GPUs, and the adaptive
/// mode where the runtime's `zc::adapt` policy engine classifies each
/// mapped region online.
enum class ApuMapsMode {
  Off,
  On,
  Adaptive,
};

[[nodiscard]] constexpr const char* to_string(ApuMapsMode m) {
  switch (m) {
    case ApuMapsMode::Off:
      return "0";
    case ApuMapsMode::On:
      return "1";
    case ApuMapsMode::Adaptive:
      return "adaptive";
  }
  return "?";
}

/// The three states of `OMPX_APU_RACE_CHECK`: detection off (the default —
/// no vector clocks, zero overhead), report (record every race in
/// `trace::RaceTrace` and keep running), and abort (raise a structured
/// `OffloadError` on the first race).
enum class RaceCheckMode {
  Off,
  Report,
  Abort,
};

[[nodiscard]] constexpr const char* to_string(RaceCheckMode m) {
  switch (m) {
    case RaceCheckMode::Off:
      return "off";
    case RaceCheckMode::Report:
      return "report";
    case RaceCheckMode::Abort:
      return "abort";
  }
  return "?";
}

/// The three states of `OMPX_APU_CHECK`: the static offload-IR verifier
/// (`zc::check`) off (no recording, zero overhead), report (record the
/// operation stream, analyze it after the run, attach the findings to the
/// run result), and abort (additionally raise a structured `OffloadError`
/// after the run when any finding survives). The analysis is timing-free
/// and post-hoc: abort mode cannot stop the simulated program mid-run.
enum class CheckMode {
  Off,
  Report,
  Abort,
};

[[nodiscard]] constexpr const char* to_string(CheckMode m) {
  switch (m) {
    case CheckMode::Off:
      return "off";
    case CheckMode::Report:
      return "report";
    case CheckMode::Abort:
      return "abort";
  }
  return "?";
}

/// The two states of `OMPX_APU_PRESSURE`: off (the historical hard refusal
/// when a coarse-grain pool allocation exceeds HBM capacity) and watermarks
/// (the driver reclaims cold zero-copy pages to DDR when HBM crosses a high
/// watermark, so allocations and faults see graded slowdown instead of OOM).
enum class PressureMode {
  Off,
  Watermarks,
};

[[nodiscard]] constexpr const char* to_string(PressureMode m) {
  switch (m) {
    case PressureMode::Off:
      return "off";
    case PressureMode::Watermarks:
      return "watermarks";
  }
  return "?";
}

/// The three states of the `THP` knob: off (4 KB pages), on (2 MB pages,
/// the paper's configuration), and dynamic (2 MB pages plus the MI300A
/// split/collapse state machine: a huge-page span splits to 4 KB pricing
/// under eviction or partial migration and collapses back when the span
/// re-homogenizes on the CPU).
enum class ThpMode {
  Off,
  On,
  Dynamic,
};

[[nodiscard]] constexpr const char* to_string(ThpMode m) {
  switch (m) {
    case ThpMode::Off:
      return "0";
    case ThpMode::On:
      return "1";
    case ThpMode::Dynamic:
      return "dynamic";
  }
  return "?";
}

/// Parsed `OMPX_APU_AUTOMIGRATE`: access-counter driven automatic page
/// migration. A truthy value enables it at the default touch threshold; an
/// integer >= 2 enables it with that threshold (touches by a non-home
/// socket before the driver migrates the page).
struct AutomigrateConfig {
  bool enabled = false;
  int threshold = 4;  ///< remote touches before the page migrates
};

/// Parsed `OMPX_APU_WATCHDOG=<budget>[:abort|recover]`: the virtual-time
/// budget an in-flight device operation may stay outstanding before the
/// runtime's watchdog tears down its queue, and what happens afterwards
/// (replay the operation, or raise a structured `OffloadError`). A zero
/// budget means no watchdog — a hung operation becomes a simulation
/// deadlock, as on a machine with no driver timeout configured.
struct WatchdogConfig {
  sim::Duration budget{};  ///< zero = watchdog disabled
  bool recover = true;     ///< replay after the trip (vs abort the region)

  [[nodiscard]] bool enabled() const { return budget > sim::Duration::zero(); }
};

/// Parse an `OMPX_APU_WATCHDOG` value: an integer budget with an optional
/// `ns`/`us`/`ms` unit suffix (default ns), optionally followed by
/// `:abort` or `:recover` (default recover). "0" disables the watchdog.
/// Throws `EnvError` on anything else.
[[nodiscard]] WatchdogConfig parse_watchdog(const std::string& raw);

/// The policy ladder of the multi-tenant offload service (`zc::service`),
/// from nothing (a global FIFO that is allowed to collapse under overload)
/// to the full robustness stack. Each rung strictly adds to the previous:
///
///  * `Off`   — no admission control, no fairness: one global FIFO;
///  * `Admit` — per-socket HBM admission control with a bounded per-tenant
///              admission queue (overflow sheds with a typed error);
///  * `Fair`  — plus deficit-round-robin fair queueing across tenants with
///              a starvation watchdog;
///  * `Full`  — plus priority load shedding with retry-after hints,
///              per-tenant circuit breakers, and memory-pressure-aware
///              de-admission of the lowest-priority tenant.
enum class ServicePolicy {
  Off,
  Admit,
  Fair,
  Full,
};

[[nodiscard]] constexpr const char* to_string(ServicePolicy p) {
  switch (p) {
    case ServicePolicy::Off:
      return "off";
    case ServicePolicy::Admit:
      return "admit";
    case ServicePolicy::Fair:
      return "fair";
    case ServicePolicy::Full:
      return "full";
  }
  return "?";
}

/// Parsed `OMPX_APU_SERVICE=<tenants>:<policy>`: how many tenants the
/// service multiplexes and which rung of the policy ladder governs them.
/// Zero tenants (the default) means the service layer is not in use.
struct ServiceConfig {
  int tenants = 0;  ///< 0 = service disabled
  ServicePolicy policy = ServicePolicy::Off;

  [[nodiscard]] bool enabled() const { return tenants > 0; }
};

/// Parse an `OMPX_APU_SERVICE` value: `<tenants>:<policy>` with tenants a
/// positive integer and policy one of `off`, `admit`, `fair`, `full`
/// (case-insensitive). Throws `EnvError` on anything else — including a
/// missing policy part, so an experiment can never silently run the wrong
/// rung of the ladder.
[[nodiscard]] ServiceConfig parse_service(const std::string& raw);

/// The run environment knobs that steer configuration selection, mirroring
/// the environment variables the paper describes:
///
///  * `HSA_XNACK`      — unified-memory (XNACK-replay) support enabled;
///  * `OMPX_APU_MAPS`  — opt-in implicit zero-copy on discrete GPUs with
///                        XNACK enabled (footnote 1 of the paper), or
///                        `adaptive` to let the runtime classify each mapped
///                        region online (the Adaptive Maps configuration);
///  * `OMPX_EAGER_ZERO_COPY_MAPS` — ask the runtime to prefault the GPU page
///                        table on every map (the Eager Maps configuration);
///  * THP              — transparent huge pages; the paper runs all
///                        experiments with THP on so both Copy and zero-copy
///                        work on 2 MB pages;
///  * `OMPX_APU_FAULTS` — deterministic fault schedule for the `zc::fault`
///                        engine (see zc/fault/spec.hpp for the grammar);
///                        empty means fault-free;
///  * `OMPX_APU_WATCHDOG` — hang-detection budget and policy for in-flight
///                        device operations (see `WatchdogConfig`); unset
///                        means no watchdog;
///  * `OMPX_APU_RACE_CHECK` — the happens-before race detector
///                        (`zc::race`): off, report, or abort; a `:pruned`
///                        suffix (e.g. `report:pruned`) makes the harness
///                        statically prove ranges race-free first and
///                        instrument only the rest;
///  * `OMPX_APU_CHECK`  — the static offload-IR mapping verifier
///                        (`zc::check`): off, report, or abort;
///  * `OMPX_APU_SOCKETS` — number of APU sockets the node exposes; 0 (unset)
///                        keeps the machine topology's own socket count;
///  * `OMPX_APU_FABRIC` — how inter-socket traffic is priced: `off` (the
///                        legacy flat remote factors), `xgmi` (the MI300A
///                        wide/narrow link asymmetry), or `uniform` (every
///                        pair wide). See `fabric::FabricMode`;
///  * `OMPX_APU_PRESSURE` — HBM pressure handling: `off` (hard pool-OOM
///                        refusal) or `watermarks` (graded reclaim of cold
///                        zero-copy pages to DDR). See `PressureMode`;
///  * `OMPX_APU_AUTOMIGRATE` — access-counter automatic page migration:
///                        a boolean, or an integer >= 2 giving the remote
///                        touch threshold. See `AutomigrateConfig`;
///  * `OMPX_APU_SERVICE` — multi-tenant offload service configuration
///                        `<tenants>:<policy>` (see `ServiceConfig`); unset
///                        means the service layer is not in use.
struct RunEnvironment {
  bool hsa_xnack = true;
  ApuMapsMode ompx_apu_maps = ApuMapsMode::Off;
  bool ompx_eager_maps = false;
  bool transparent_huge_pages = true;
  /// Full three-state THP setting; `transparent_huge_pages` stays the
  /// authoritative page-size bool and is kept in sync by parsing
  /// (`dynamic` implies 2 MB pages).
  ThpMode thp = ThpMode::On;
  std::string ompx_apu_faults;
  WatchdogConfig watchdog;
  RaceCheckMode race_check = RaceCheckMode::Off;
  /// `:pruned` suffix on `OMPX_APU_RACE_CHECK` (e.g. "report:pruned"): the
  /// harness first records the program's offload IR, statically partitions
  /// buffer ranges into proven-safe and must-check sets (`zc::check`), and
  /// instruments only the unproven ranges on the measured run.
  bool race_check_pruned = false;
  CheckMode ompx_apu_check = CheckMode::Off;
  int ompx_apu_sockets = 0;  ///< 0 = use the topology's socket count
  fabric::FabricMode ompx_apu_fabric = fabric::FabricMode::Off;
  PressureMode ompx_apu_pressure = PressureMode::Off;
  AutomigrateConfig ompx_apu_automigrate;
  ServiceConfig ompx_apu_service;

  /// Page size implied by the THP setting: 2 MB when on, 4 KB when off.
  [[nodiscard]] std::uint64_t page_bytes() const {
    return transparent_huge_pages ? (2ULL << 20) : (4ULL << 10);
  }

  /// Parse from environment-variable-style key/value pairs; unknown keys
  /// are ignored. Boolean knobs accept "1"/"true"/"on"/"yes" and
  /// "0"/"false"/"off"/"no" (case-insensitive); `OMPX_APU_MAPS`
  /// additionally accepts "adaptive". Any other value for a recognized key
  /// throws `EnvError`. Keys: HSA_XNACK, OMPX_APU_MAPS,
  /// OMPX_EAGER_ZERO_COPY_MAPS, THP, OMPX_APU_FAULTS (whose value is
  /// validated against the fault-spec grammar), OMPX_APU_WATCHDOG (parsed
  /// via `parse_watchdog`), OMPX_APU_RACE_CHECK ("off", "report", or
  /// "abort", case-insensitive, with an optional ":pruned" suffix on the
  /// non-off modes), OMPX_APU_CHECK (exactly "off", "report", or "abort",
  /// case-insensitive), OMPX_APU_SOCKETS (a positive integer),
  /// OMPX_APU_FABRIC (exactly "off", "xgmi", or "uniform",
  /// case-insensitive), OMPX_APU_PRESSURE (exactly "off" or "watermarks",
  /// case-insensitive), OMPX_APU_AUTOMIGRATE (a boolean, or an integer
  /// >= 2 giving the remote-touch threshold), OMPX_APU_SERVICE (parsed via
  /// `parse_service`). THP additionally accepts "dynamic" (2 MB pages plus
  /// the split/collapse state machine).
  [[nodiscard]] static RunEnvironment from_env(
      const std::map<std::string, std::string>& env);

  /// Render as "HSA_XNACK=1 OMPX_APU_MAPS=0 ..." for logs and reports.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace zc::apu
