#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace zc::apu {

/// Raised by `RunEnvironment::from_env` when a recognized environment
/// variable carries a value the runtime cannot interpret. Real runtimes
/// silently coerce such typos into "off"; the simulator refuses them so
/// configuration experiments can't accidentally run the wrong setup.
class EnvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The three states of `OMPX_APU_MAPS`: off, the footnote-1 opt-in that
/// forces implicit zero-copy handling on discrete GPUs, and the adaptive
/// mode where the runtime's `zc::adapt` policy engine classifies each
/// mapped region online.
enum class ApuMapsMode {
  Off,
  On,
  Adaptive,
};

[[nodiscard]] constexpr const char* to_string(ApuMapsMode m) {
  switch (m) {
    case ApuMapsMode::Off:
      return "0";
    case ApuMapsMode::On:
      return "1";
    case ApuMapsMode::Adaptive:
      return "adaptive";
  }
  return "?";
}

/// The run environment knobs that steer configuration selection, mirroring
/// the environment variables the paper describes:
///
///  * `HSA_XNACK`      — unified-memory (XNACK-replay) support enabled;
///  * `OMPX_APU_MAPS`  — opt-in implicit zero-copy on discrete GPUs with
///                        XNACK enabled (footnote 1 of the paper), or
///                        `adaptive` to let the runtime classify each mapped
///                        region online (the Adaptive Maps configuration);
///  * `OMPX_EAGER_ZERO_COPY_MAPS` — ask the runtime to prefault the GPU page
///                        table on every map (the Eager Maps configuration);
///  * THP              — transparent huge pages; the paper runs all
///                        experiments with THP on so both Copy and zero-copy
///                        work on 2 MB pages;
///  * `OMPX_APU_FAULTS` — deterministic fault schedule for the `zc::fault`
///                        engine (see zc/fault/spec.hpp for the grammar);
///                        empty means fault-free.
struct RunEnvironment {
  bool hsa_xnack = true;
  ApuMapsMode ompx_apu_maps = ApuMapsMode::Off;
  bool ompx_eager_maps = false;
  bool transparent_huge_pages = true;
  std::string ompx_apu_faults;

  /// Page size implied by the THP setting: 2 MB when on, 4 KB when off.
  [[nodiscard]] std::uint64_t page_bytes() const {
    return transparent_huge_pages ? (2ULL << 20) : (4ULL << 10);
  }

  /// Parse from environment-variable-style key/value pairs; unknown keys
  /// are ignored. Boolean knobs accept "1"/"true"/"on"/"yes" and
  /// "0"/"false"/"off"/"no" (case-insensitive); `OMPX_APU_MAPS`
  /// additionally accepts "adaptive". Any other value for a recognized key
  /// throws `EnvError`. Keys: HSA_XNACK, OMPX_APU_MAPS,
  /// OMPX_EAGER_ZERO_COPY_MAPS, THP, OMPX_APU_FAULTS (whose value is
  /// validated against the fault-spec grammar).
  [[nodiscard]] static RunEnvironment from_env(
      const std::map<std::string, std::string>& env);

  /// Render as "HSA_XNACK=1 OMPX_APU_MAPS=0 ..." for logs and reports.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace zc::apu
