#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace zc::apu {

/// The run environment knobs that steer configuration selection, mirroring
/// the environment variables the paper describes:
///
///  * `HSA_XNACK`      — unified-memory (XNACK-replay) support enabled;
///  * `OMPX_APU_MAPS`  — opt-in implicit zero-copy on discrete GPUs with
///                        XNACK enabled (footnote 1 of the paper);
///  * `OMPX_EAGER_ZERO_COPY_MAPS` — ask the runtime to prefault the GPU page
///                        table on every map (the Eager Maps configuration);
///  * THP              — transparent huge pages; the paper runs all
///                        experiments with THP on so both Copy and zero-copy
///                        work on 2 MB pages.
struct RunEnvironment {
  bool hsa_xnack = true;
  bool ompx_apu_maps = false;
  bool ompx_eager_maps = false;
  bool transparent_huge_pages = true;

  /// Page size implied by the THP setting: 2 MB when on, 4 KB when off.
  [[nodiscard]] std::uint64_t page_bytes() const {
    return transparent_huge_pages ? (2ULL << 20) : (4ULL << 10);
  }

  /// Parse from environment-variable-style key/value pairs; unknown keys are
  /// ignored, values "1"/"true"/"on" (case-insensitive) enable a knob and
  /// anything else disables it. Keys: HSA_XNACK, OMPX_APU_MAPS,
  /// OMPX_EAGER_ZERO_COPY_MAPS, THP.
  [[nodiscard]] static RunEnvironment from_env(
      const std::map<std::string, std::string>& env);

  /// Render as "HSA_XNACK=1 OMPX_APU_MAPS=0 ..." for logs and reports.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace zc::apu
