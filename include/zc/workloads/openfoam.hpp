#pragma once

#include <cstdint>

#include "zc/sim/time.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {

/// Proxy of an OpenFOAM-style CFD solver built with
/// `#pragma omp requires unified_shared_memory` — the porting approach the
/// paper cites as the main production user of the USM configuration
/// (Tandon et al. [29]).
///
/// Characteristics it exercises, distinct from QMCPack and SPECaccel:
///  * the binary *requires* USM: no map clauses anywhere; kernels receive
///    host pointers for the mesh, matrix, and field arrays directly;
///  * declare-target globals (solver controls) accessed through double
///    indirection, updated by the host between iterations without any
///    mapping;
///  * host-side convergence checks every iteration read GPU-written
///    residuals from shared storage;
///  * consequently the binary is NOT portable to non-unified-memory
///    deployments — `resolve_config` throws, which the tests assert.
struct OpenfoamParams {
  std::uint64_t cells = 1 << 20;          ///< mesh cells
  int time_steps = 20;                    ///< outer time loop
  int pcg_iterations = 15;                ///< inner linear-solver iterations
  sim::Duration spmv_compute = sim::Duration::from_us(400);
  sim::Duration dot_compute = sim::Duration::from_us(60);
  sim::Duration axpy_compute = sim::Duration::from_us(120);

  [[nodiscard]] std::uint64_t field_bytes() const {
    return cells * sizeof(double);
  }
  [[nodiscard]] std::uint64_t matrix_bytes() const {
    return cells * 8 * sizeof(double);  // ~7-point stencil + diagonal
  }
};

/// Build the runnable USM program (binary has requires_unified_shared_memory
/// set; running it in an environment without XNACK raises ConfigError).
[[nodiscard]] Program make_openfoam(const OpenfoamParams& params = {});

}  // namespace zc::workloads
