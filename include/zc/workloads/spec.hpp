#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "zc/sim/time.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {

/// Proxies of the SPECaccel 2023 C/C++ benchmarks the paper evaluates
/// (§V-B). Each proxy encodes the causal structure the paper uses to
/// explain its Table II ratio; the scale knobs below carry ref-workload-
/// flavoured defaults and are documented in EXPERIMENTS.md.
///
/// All SPECaccel runs use a single host thread (no MPI). Setting
/// `devices > 1` on a param struct models a static multi-APU partitioning
/// of the same problem: the arrays are split into `devices` equal shards,
/// one offloading host thread per shard, with shard d homed on socket d
/// and dispatched to device d. Per-kernel compute scales by 1/devices
/// (perfect strong scaling of the compute phase — the interesting
/// asymmetries are in the memory system). The run must be configured with
/// at least `devices` sockets (RunOptions::sockets / OMPX_APU_SOCKETS).

/// 403.stencil — two grids; one bulk copy in at start and one out at end
/// (Copy config); steady-state kernels access the grids exclusively from
/// the GPU, mapping only a scalar residual per iteration. The input grid
/// is host-initialized (cheap resident faults under zero-copy); the output
/// grid is GPU-first-touched (expensive demand materialization -> the
/// O(10^6) us MI of Table III).
struct StencilParams {
  std::uint64_t grid_bytes = 3ULL << 30;  ///< per grid (in and out)
  int iterations = 3000;
  sim::Duration per_iter_compute = sim::Duration::from_us(60000);
  int devices = 1;  ///< static partitioning across this many APUs
};
[[nodiscard]] Program make_stencil(const StencilParams& params = {});

/// 404.lbm — two host-initialized lattices transferred at the start (and
/// one back at the end) under Copy; the per-iteration target constructs
/// carry map clauses for the lattices, so Eager Maps pays a prefault
/// syscall + presence walk per iteration.
struct LbmParams {
  std::uint64_t lattice_bytes = 1792ULL << 20;  ///< per lattice (two of them)
  int iterations = 1500;
  sim::Duration per_iter_compute = sim::Duration::from_us(4400);
  int devices = 1;  ///< static partitioning across this many APUs
};
[[nodiscard]] Program make_lbm(const LbmParams& params = {});

/// 452.ep — allocates a large arena (ROCr pool under Copy; host memory
/// otherwise), performs NO copies, and initializes the arena inside a
/// target region: GPU-side first touch. Copy's bulk-prefaulted pool makes
/// initialization fault-free; Implicit Z-C/USM demand-fault page by page;
/// Eager Maps prefaults on map.
struct EpParams {
  std::uint64_t arena_bytes = 16ULL << 30;
  int batches = 110;  ///< gaussian-pair generation batches after init
  sim::Duration per_batch_compute = sim::Duration::from_us(500000);
  int devices = 1;  ///< static partitioning across this many APUs
};
[[nodiscard]] Program make_ep(const EpParams& params = {});

/// 457.spC — every cycle: GB-scale host stack arrays (fresh addresses),
/// map in, 13 small kernels (each a few percent of an allocation), map
/// out, free. Copy pays allocation + copy every cycle; zero-copy pays only
/// faults (Eager: prefaults) on the fresh addresses.
struct SpcParams {
  std::uint64_t array_bytes = 1792ULL << 20;  ///< per array, two arrays
  int cycles = 40;
  int kernels_per_cycle = 13;
  sim::Duration per_kernel_compute = sim::Duration::from_us(1500);
  int devices = 1;  ///< static partitioning across this many APUs
};
[[nodiscard]] Program make_spc(const SpcParams& params = {});

/// 470.bt — like spC with >2 GB largest allocation, 10 kernels per cycle,
/// and a dominant kernel ~30% of the largest allocation's time: more
/// kernel time per cycle, hence a smaller (but still large) ratio.
struct BtParams {
  std::uint64_t array_bytes = 2304ULL << 20;  ///< per array, two arrays
  int cycles = 40;
  int kernels_per_cycle = 10;  ///< including the one dominant kernel
  sim::Duration per_kernel_compute = sim::Duration::from_us(5000);
  sim::Duration big_kernel_compute = sim::Duration::from_us(30000);
  int devices = 1;  ///< static partitioning across this many APUs
};
[[nodiscard]] Program make_bt(const BtParams& params = {});

/// The Table II benchmark list, in paper order.
struct SpecBenchmark {
  std::string name;
  Program program;
};
[[nodiscard]] std::vector<SpecBenchmark> make_spec_suite();

}  // namespace zc::workloads
