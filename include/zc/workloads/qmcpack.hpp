#pragma once

#include <cstdint>
#include <vector>

#include "zc/sim/time.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {

/// Proxy of the QMCPack "NiO" performance benchmark (§V-A of the paper).
///
/// The proxy reproduces the two discrete-GPU optimization patterns the
/// paper studies and the runtime-traffic profile of Table I:
///
///  * **Ahead-of-time data transfer** — each run begins with one bulk map
///    of a large read-only spline table, followed by a long Monte-Carlo
///    phase with only small per-step transfers.
///  * **Data-transfer latency hiding** — `threads` OpenMP host threads,
///    each owning `walkers_per_thread` walkers, offload concurrently to
///    the one GPU; under Legacy Copy their many small copies ride the SDMA
///    engines behind other threads' kernels.
///
/// Each MC step runs four kernels per walker (drift, spline evaluation on
/// a rotating window of the table, determinant update, host-side reduction
/// accumulation), with `always`-modified maps of small per-walker arrays —
/// the pattern that makes Eager Maps issue a prefault syscall per map. The
/// spline-evaluation scratch buffer lives on the "program stack" of the
/// step function and is re-mapped fresh, giving Legacy Copy its per-step
/// pool allocation (the ~23k allocations of Table I).
struct QmcpackParams {
  int size = 2;                ///< NiO problem size (S2 ... S128)
  int threads = 1;             ///< OpenMP host threads offloading
  /// APU sockets to spread the host threads over (§III-A affinity: thread
  /// t offloads to device t*sockets/threads and homes its walkers there).
  /// The run's machine topology must provide at least this many sockets.
  int sockets = 1;
  int walkers_per_thread = 8;
  int steps = 300;             ///< MC steps; ~3000 reproduces Table I counts
  /// Synchronize all host threads every N steps (0 = never): QMCPack's MC
  /// block boundaries, where walker statistics are exchanged.
  int block_sync_period = 0;

  // --- calibration constants (documented in EXPERIMENTS.md) -------------
  std::uint64_t spline_mb_per_size = 96;  ///< spline table MB per size unit
  std::uint64_t walker_buf_base = 4096;   ///< per-walker array bytes per size unit
  std::uint64_t reduce_bytes = 8192;      ///< host reduction array bytes
  std::uint64_t scratch_bytes = 16384;    ///< per-step stack scratch bytes
  std::uint64_t spline_window_pages = 16; ///< table slice a kernel touches
  sim::Duration kernel_base = sim::Duration::from_us(10.0);
  sim::Duration kernel_per_size = sim::Duration::from_us(10.0);

  [[nodiscard]] std::uint64_t spline_bytes() const {
    return spline_mb_per_size * static_cast<std::uint64_t>(size) * (1ULL << 20);
  }
  [[nodiscard]] std::uint64_t walker_buf_bytes() const;
  /// Per-kernel modeled compute time (grows linearly with problem size).
  [[nodiscard]] sim::Duration kernel_compute() const {
    return kernel_base + kernel_per_size * static_cast<double>(size);
  }
};

/// Paper problem sizes for the NiO series.
[[nodiscard]] std::vector<int> qmcpack_paper_sizes();

/// Build the runnable program for these parameters.
[[nodiscard]] Program make_qmcpack(const QmcpackParams& params);

}  // namespace zc::workloads
