#pragma once

#include "zc/workloads/runner.hpp"

namespace zc::workloads {

/// Seeded buggy-workload corpus for the `zc::check` static verifier.
///
/// Each program plants exactly one mapping bug of a kind the paper's
/// portability discussion calls out: code that *happens to work* on an
/// MI300A because zero-copy makes host and device views coincide, but is
/// wrong OpenMP — it breaks (an error, or silently stale data) the moment
/// the same binary runs under Legacy Copy on a discrete GPU. The corpus
/// serves double duty:
///
///  * statically, `OMPX_APU_CHECK=report` must flag each planted bug with
///    an op-index + buffer-range diagnostic (`buggy_corpus_test`);
///  * dynamically, each bug is confirmed for real — a typed error under
///    Legacy Copy, or a checksum divergence between Legacy Copy and the
///    zero-copy configurations (`differential` semantics, same checksums
///    the config-matrix tests compare).
///
/// All corpus programs are single-threaded and deterministic; their
/// checksums are bit-identical under any stress seed.

/// Kernel reads a buffer that no enclosing data environment ever mapped.
/// Works under zero-copy (identity translation); Legacy Copy faults at
/// argument translation. Static finding: `use-before-map`.
[[nodiscard]] Program make_buggy_missing_map();

/// Kernel updates device-resident data, but the host reads the result
/// without a `target update from` (and the mapping exits with `delete`,
/// so no copy-back ever happens). Works under zero-copy; under Legacy
/// Copy the host reads the stale pre-kernel values. Static finding:
/// `stale-host-read`.
[[nodiscard]] Program make_buggy_stale_data();

/// Structured reference counting gone wrong: two `enter data` maps, an
/// `exit data delete` (which drops the mapping regardless of the count),
/// then an `exit data tofrom` of the now-absent range. Zero-copy configs
/// shrug; Legacy Copy raises a mapping violation. Static finding:
/// `double-release`.
[[nodiscard]] Program make_buggy_double_delete();

/// Zero-copy-only coherence: the host rewrites a `to`-mapped buffer while
/// the mapping is live, then a kernel reads it without an `always`/update
/// refresh. Under zero-copy the kernel sees the new values; under Legacy
/// Copy it reads the stale device snapshot. Static finding:
/// `config-divergence`.
[[nodiscard]] Program make_buggy_coherence();

/// A real data race: host touch of a zero-copy-mapped buffer while a
/// `nowait` kernel over the same buffer is still in flight. Not a mapping
/// bug — the static verifier's race partition must put the buffer in the
/// *must-check* set so `OMPX_APU_RACE_CHECK=report:pruned` still
/// instruments it and the dynamic detector still reports the race
/// (`race_prune_test`: pruning loses no reports).
[[nodiscard]] Program make_buggy_nowait_race();

}  // namespace zc::workloads
