#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "zc/check/report.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/sim/jitter.hpp"
#include "zc/stats/repetition.hpp"
#include "zc/trace/call_stats.hpp"
#include "zc/trace/copy_trace.hpp"
#include "zc/trace/decision_trace.hpp"
#include "zc/trace/fault_trace.hpp"
#include "zc/trace/kernel_trace.hpp"
#include "zc/trace/overhead_ledger.hpp"
#include "zc/trace/race_trace.hpp"

namespace zc::workloads {

/// A workload packaged for the experiment harness: program-binary
/// properties, a thread-spawning setup, and an optional checksum extractor
/// evaluated after the simulation drains (used by tests to assert that all
/// four configurations compute identical results).
struct Program {
  omp::ProgramBinary binary;
  std::function<void(omp::OffloadStack&)> setup_threads;
  std::function<double(omp::OffloadStack&)> finalize;
};

/// How to run a Program once.
struct RunOptions {
  omp::RuntimeConfig config = omp::RuntimeConfig::ImplicitZeroCopy;
  sim::JitterParams jitter{};
  std::uint64_t seed = 1;
  bool keep_kernel_records = false;

  /// Number of APU sockets (OMPX_APU_SOCKETS); 0 keeps the topology's
  /// count. Values > 1 model a multi-APU node.
  int sockets = 0;
  /// Fabric mode between sockets (OMPX_APU_FABRIC grammar: "off", "xgmi",
  /// or "uniform"); empty keeps the fabric off — remote traffic then uses
  /// the legacy flat bandwidth derating.
  std::string fabric_spec;

  /// When set, run the scheduler in interleaving stress mode with this
  /// seed: ready-thread ties and lock/wait points are perturbed by a
  /// seeded RNG (reproducible per seed). Workload results must be
  /// bit-identical under any stress seed — the differential check the
  /// lock-discipline tests rely on.
  std::optional<std::uint64_t> stress_seed;

  /// Ablation overrides (defaults: MI300A machine as configured for
  /// `config`). `transparent_huge_pages=false` switches to 4 KB pages.
  std::optional<apu::CostParams> costs;
  std::optional<apu::Topology> topology;
  std::optional<bool> transparent_huge_pages;

  /// Deterministic fault schedule (OMPX_APU_FAULTS grammar); empty runs
  /// fault-free. Validated at machine construction.
  std::string fault_spec;

  /// Hang-detection budget (OMPX_APU_WATCHDOG grammar, e.g. "200us" or
  /// "1ms:abort"); empty runs with no watchdog — a hang then deadlocks the
  /// simulation with a diagnostic naming the stuck signal.
  std::string watchdog_spec;

  /// Happens-before race detection (OMPX_APU_RACE_CHECK grammar: "off",
  /// "report", or "abort", optionally with a ":pruned" suffix); empty runs
  /// with the detector off. With ":pruned" the harness first records the
  /// program's offload IR on a detector-off phase, statically partitions
  /// buffer ranges into proven-safe and must-check sets (`zc::check`), and
  /// then runs the measured phase with the detector instrumenting only the
  /// unproven ranges.
  std::string race_check_spec;

  /// Static offload-IR mapping verification (OMPX_APU_CHECK grammar:
  /// "off", "report", or "abort"); empty runs without the recorder. In
  /// "report" the findings land in `RunResult::check`; in "abort" any
  /// finding raises `OffloadError(CheckViolation)` after the run.
  std::string check_spec;

  /// Memory-pressure handling (OMPX_APU_PRESSURE grammar: "off" or
  /// "watermarks"); empty keeps pressure handling off — a full pool then
  /// fails allocations hard, as before.
  std::string pressure_spec;

  /// Access-counter page migration (OMPX_APU_AUTOMIGRATE grammar: boolean
  /// or a remote-touch threshold >= 2); empty keeps it off.
  std::string automigrate_spec;

  /// Transparent-huge-page mode (THP grammar: boolean or "dynamic");
  /// empty keeps the config's default. "dynamic" enables the 2 MB <-> 4 KB
  /// split/collapse state machine on top of huge pages. Overrides
  /// `transparent_huge_pages` when both are set.
  std::string thp_spec;
};

/// Per-device telemetry for one run (one entry per socket).
struct DeviceStats {
  /// Kernel/fault/copy/migration counters from the HSA layer.
  hsa::DeviceCounters counters;
  /// Physical HBM occupancy at the end of the run.
  std::uint64_t hbm_used = 0;
  /// Bytes spilled to the DDR tier at the end of the run (node-wide;
  /// reported on every entry for convenience).
  std::uint64_t ddr_used = 0;
  /// Kernel-duration percentiles in microseconds, from the per-launch
  /// records (0 unless RunOptions::keep_kernel_records and the device ran
  /// at least one kernel).
  double kernel_p50_us = 0.0;
  double kernel_p95_us = 0.0;
};

/// Per-tenant SLO telemetry of a `zc::service` run, filled by the service
/// layer's deterministic stats pipeline (quantiles from a
/// `stats::QuantileSketch` over job sojourn latencies, counts exact).
/// Plain doubles/integers so `RunResult` stays value-copyable.
struct TenantServiceStats {
  int tenant = 0;
  std::uint64_t weight = 1;      ///< DRR weight (higher = more service)
  std::uint64_t offered = 0;     ///< jobs the arrival process generated
  std::uint64_t admitted = 0;    ///< jobs that passed admission control
  std::uint64_t completed = 0;   ///< jobs retired with a verified checksum
  std::uint64_t shed = 0;        ///< jobs shed with a typed OffloadError
  std::uint64_t failed = 0;      ///< jobs that raised during execution
  std::uint64_t deadmissions = 0;       ///< times pressure paused the tenant
  std::uint64_t starvation_boosts = 0;  ///< DRR watchdog force-serves
  std::uint64_t breaker_opens = 0;      ///< tenant breaker open transitions
  double p50_us = 0.0;   ///< sojourn-latency quantiles (arrival -> retire)
  double p99_us = 0.0;
  double p999_us = 0.0;
  double goodput_jps = 0.0;  ///< completed jobs per second of makespan
  double checksum = 0.0;     ///< completed-job checksums, id-ordered sum
  /// GPU-queue / SDMA-engine consumption attributed by the HSA layer.
  hsa::TenantCounters counters;
};

/// Everything one run produces.
struct RunResult {
  omp::RuntimeConfig config;
  sim::Duration wall_time;  ///< simulation makespan (max over host threads)
  /// Discrete scheduler events executed (context switches + timer fires);
  /// divided by host wall-clock this is the `bench/micro_des` events/sec.
  std::uint64_t sim_events = 0;
  trace::CallStats stats;
  trace::KernelTraceSummary kernels;
  trace::OverheadLedger ledger;
  double checksum = 0.0;
  /// Per-launch records (only when RunOptions::keep_kernel_records).
  std::vector<trace::KernelRecord> kernel_records;
  /// SDMA transfer summary and (with keep_kernel_records) its records.
  trace::CopyTraceSummary copies;
  std::vector<trace::CopyRecord> copy_records;
  /// One entry per socket; size 1 on single-APU runs.
  std::vector<DeviceStats> devices;
  /// Adaptive Maps policy decisions (empty for the static configurations).
  trace::DecisionTrace decisions;
  /// Fault injections and degraded-mode reactions (empty on fault-free runs).
  trace::FaultTrace faults;
  /// Race reports (empty unless RunOptions::race_check_spec enabled the
  /// detector — and, on a correctly synchronized program, empty even then).
  trace::RaceTrace races;
  /// Per-tenant service stats (empty unless the program was built by
  /// `service::run_service`, which fills them in at finalize).
  std::vector<TenantServiceStats> service_tenants;
  /// Static mapping-verifier findings (empty unless RunOptions::check_spec
  /// or a ":pruned" race spec enabled the recorder). Deterministic: the
  /// same program yields a bit-identical trace under any stress seed.
  check::CheckTrace check;
  /// Static may-race partition from the same analysis.
  check::RacePartition race_partition;
  /// Host wall-clock milliseconds spent on the checker phases (the
  /// record-only run of a ":pruned" flow plus the static analysis); 0 when
  /// the recorder is off. Real time, not simulated time.
  double check_phase_ms = 0.0;
  /// Page-stamp split of a pruned detector run (both 0 otherwise).
  std::uint64_t race_pruned_stamps = 0;
  std::uint64_t race_checked_stamps = 0;
};

/// Build the stack, run the program to completion, snapshot the telemetry.
[[nodiscard]] RunResult run_program(const Program& program,
                                    const RunOptions& options);

/// Repeat a run `reps` times with distinct seeds (paper methodology) and
/// return the measured wall times.
[[nodiscard]] stats::RepeatedRuns repeat_program(const Program& program,
                                                 RunOptions options, int reps);

}  // namespace zc::workloads
