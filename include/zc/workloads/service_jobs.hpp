#pragma once

#include <cstdint>
#include <string>

#include "zc/core/offload_stack.hpp"
#include "zc/sim/time.hpp"

namespace zc::workloads {

/// What one service job does on the device. The three flavors cover the
/// paper's offload shapes from the service layer's point of view:
///
///  * `Compute` — persistent arrays mapped once, a burst of kernels over
///    them (QMCPack-like steady state; map traffic only at the edges).
///  * `Stream`  — a fresh bulk buffer mapped and swept per kernel
///    (SPEChpc-like; stresses the mapping path every kernel).
///  * `Staged`  — an explicit `omp_target_alloc` staging buffer fed by
///    `omp_target_memcpy` (the HIP-device-library pattern the paper warns
///    about). The *only* flavor whose data path crosses the SDMA engines
///    under Implicit Zero-Copy — which makes it the tenant-isolation
///    probe: an `sdma_stall` fault schedule hangs Staged jobs while
///    Compute/Stream tenants never touch the faulted site.
enum class JobFlavor {
  Compute,
  Stream,
  Staged,
};

[[nodiscard]] constexpr const char* to_string(JobFlavor f) {
  switch (f) {
    case JobFlavor::Compute:
      return "compute";
    case JobFlavor::Stream:
      return "stream";
    case JobFlavor::Staged:
      return "staged";
  }
  return "?";
}

/// One job, fully determined at arrival time. Everything downstream —
/// footprint, device work, and the expected checksum — is a pure function
/// of this struct, so admission control can account for a job before it
/// runs and the service can verify results without a golden run.
struct ServiceJobSpec {
  int tenant = 0;
  std::uint64_t id = 0;  ///< arrival ordinal within the tenant
  JobFlavor flavor = JobFlavor::Compute;
  std::uint64_t pages = 2;  ///< per-array working set, in pages
  int kernels = 2;          ///< device kernels this job launches
  int device = 0;           ///< home socket (tenant % sockets)
  sim::Duration kernel_compute = sim::Duration::microseconds(30);
};

/// Device-memory footprint the admission controller charges for this job,
/// at `page_bytes` page granularity. Deliberately the *worst-case* bound
/// over the configurations (Copy-managed maps plus the Staged pool
/// buffer), so admission never under-accounts.
[[nodiscard]] std::uint64_t job_footprint_bytes(const ServiceJobSpec& spec,
                                                std::uint64_t page_bytes);

/// Expected checksum of a completed job — a pure function (no simulator),
/// replaying exactly the functional arithmetic `run_service_job` performs
/// in index order. Tests and the service's retire path compare against it
/// bit-for-bit.
[[nodiscard]] double service_job_checksum(const ServiceJobSpec& spec,
                                          std::uint64_t page_bytes);

/// Execute the job on the calling virtual thread. Allocates, maps, runs
/// the kernels, unmaps, frees, and returns the functional checksum (which
/// must equal `service_job_checksum`). Throws `omp::OffloadError` if the
/// run degrades past recovery (hang abort, copy failure, pool
/// exhaustion); device state is released on the error path too.
[[nodiscard]] double run_service_job(omp::OffloadStack& stack,
                                     const ServiceJobSpec& spec);

}  // namespace zc::workloads
