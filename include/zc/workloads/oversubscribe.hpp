#pragma once

#include <cstdint>

#include "zc/apu/machine.hpp"
#include "zc/sim/time.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {

/// Synthetic HBM-oversubscription workload for the pressure experiments
/// (EXPERIMENTS.md §oversubscription). A zero-copy "ballast" working set of
/// `working_set_ratio * hbm_bytes` is host-touched up front and then swept
/// chunk by chunk from the GPU, with each chunk's device mapping scoped to
/// its phase:
///
///   - Zero-copy configurations keep the whole ballast CPU-resident, so
///     the swept chunks push HBM occupancy past the reclaim watermarks and
///     every dispatch churns the evict/fault/promote machinery.
///   - Legacy Copy allocates one chunk-sized pool copy per phase. With
///     `OMPX_APU_PRESSURE=off` the pool never fits next to the ballast and
///     the runtime rides its OOM fallback ladder; with `watermarks` the
///     driver spills cold ballast to DDR and the allocation lands.
///
/// Only a small `data_bytes` buffer carries program data (mapped tofrom
/// every phase); its cells and a running accumulator form the checksum, so
/// the five-configuration bit-identity check spans the copy/fallback/
/// reclaim paths while the multi-GB ballast never materializes host RAM.
struct OversubscribeParams {
  /// Per-socket HBM capacity the ratio refers to. Must leave room for the
  /// runtime image (~260 MB of pinned pool) plus one chunk.
  std::uint64_t hbm_bytes = 384ULL << 20;
  double working_set_ratio = 2.0;       ///< ballast bytes / hbm_bytes
  std::uint64_t chunk_bytes = 32ULL << 20;  ///< per ballast chunk
  std::uint64_t data_bytes = 4ULL << 20;    ///< checksum-carrying buffer
  int sweeps = 2;  ///< full passes over the ballast chunks
  sim::Duration per_kernel_compute = sim::Duration::from_us(2000);
};

[[nodiscard]] Program make_oversubscribe(const OversubscribeParams& params = {});

/// MI300A topology with the socket capacity capped to `params.hbm_bytes`
/// (pass as RunOptions::topology so the ratio is honored).
[[nodiscard]] apu::Topology oversubscribed_topology(
    const OversubscribeParams& params = {});

/// Number of ballast chunks the params imply (ceil of ratio * hbm / chunk).
[[nodiscard]] int oversubscribe_chunks(const OversubscribeParams& params = {});

}  // namespace zc::workloads
