#pragma once

#include <cstddef>
#include <string_view>
#include <utility>

#include "zc/sim/hooks.hpp"
#include "zc/sim/scheduler.hpp"

/// Access-site instrumentation for the happens-before race detector.
///
/// These wrappers depend only on `zc::sim` (the hooks interface), so every
/// layer — including `zc::mem` and `zc::hsa`, which sit *below* the race
/// library in the dependency DAG — can annotate its shared state without a
/// link dependency on the detector. With no hooks installed (the default,
/// `OMPX_APU_RACE_CHECK=off`) each call is one predicted branch.
namespace zc::race {

/// Record a read of instrumented shared state at `site`.
inline void on_read(sim::Scheduler& sched, const void* addr, std::size_t bytes,
                    std::string_view site) {
  if (sim::ConcurrencyHooks* h = sched.hooks()) {
    h->on_access(addr, bytes, site, /*is_write=*/false);
  }
}

/// Record a write of instrumented shared state at `site`.
inline void on_write(sim::Scheduler& sched, const void* addr,
                     std::size_t bytes, std::string_view site) {
  if (sim::ConcurrencyHooks* h = sched.hooks()) {
    h->on_access(addr, bytes, site, /*is_write=*/true);
  }
}

/// Synchronization performed by a serializing agent the simulator has no
/// first-class primitive for (the driver's memory-manager lock, the
/// allocator's internal lock): entering acquires the monitor's clock,
/// exiting releases into it, so the bracketed sections are totally ordered.
inline void monitor_enter(sim::Scheduler& sched, const void* monitor) {
  if (sim::ConcurrencyHooks* h = sched.hooks()) {
    h->on_acquire(monitor, sim::SyncKind::Monitor);
  }
}
inline void monitor_exit(sim::Scheduler& sched, const void* monitor) {
  if (sim::ConcurrencyHooks* h = sched.hooks()) {
    h->on_release(monitor, sim::SyncKind::Monitor);
  }
}

/// RAII monitor bracket. The bracketed region must not block or advance
/// virtual time — a monitor models a lock the agent never holds across a
/// wait, and a section spanning a yield would order accesses that the
/// modeled lock does not actually order.
class MonitorGuard {
 public:
  MonitorGuard(sim::Scheduler& sched, const void* monitor)
      : sched_{sched}, monitor_{monitor} {
    monitor_enter(sched_, monitor_);
  }
  ~MonitorGuard() { monitor_exit(sched_, monitor_); }
  MonitorGuard(const MonitorGuard&) = delete;
  MonitorGuard& operator=(const MonitorGuard&) = delete;

 private:
  sim::Scheduler& sched_;
  const void* monitor_;
};

/// A release-store / acquire-load pair on one word (the modeled equivalent
/// of `std::atomic` with release/acquire ordering): the store publishes the
/// writer's clock on the address, the load joins it. Used for deliberate
/// lock-free flags (e.g. the breaker-attention fast path) that are ordered
/// by the atomic itself, not by a mutex.
inline void atomic_store(sim::Scheduler& sched, const void* addr) {
  if (sim::ConcurrencyHooks* h = sched.hooks()) {
    h->on_release(addr, sim::SyncKind::Atomic);
  }
}
inline void atomic_load(sim::Scheduler& sched, const void* addr) {
  if (sim::ConcurrencyHooks* h = sched.hooks()) {
    h->on_acquire(addr, sim::SyncKind::Atomic);
  }
}

/// Shared state wrapped with its instrumentation site: every access goes
/// through `read()`/`write()`, which stamp the detector's shadow state.
/// Unlike `GuardedBy`, the wrapper asserts nothing about locks — it is for
/// state whose ordering the detector itself must prove (or refute).
template <typename T>
class RaceTracked {
 public:
  /// `what` names the state in reports; it must outlive the wrapper
  /// (string literals do).
  template <typename... Args>
  explicit RaceTracked(const char* what, Args&&... args)
      : what_{what}, value_{std::forward<Args>(args)...} {}

  RaceTracked(const RaceTracked&) = delete;
  RaceTracked& operator=(const RaceTracked&) = delete;

  [[nodiscard]] const T& read(sim::Scheduler& sched) const {
    on_read(sched, &value_, sizeof(T), what_);
    return value_;
  }
  [[nodiscard]] T& write(sim::Scheduler& sched) {
    on_write(sched, &value_, sizeof(T), what_);
    return value_;
  }

  /// Uninstrumented access for quiescent phases (pre-run configuration,
  /// post-run snapshots); call sites carry a comment saying why.
  [[nodiscard]] T& unchecked() { return value_; }
  [[nodiscard]] const T& unchecked() const { return value_; }

 private:
  const char* what_;
  T value_;
};

}  // namespace zc::race
