#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "zc/mem/address.hpp"

namespace zc::race {

/// Page-granularity skip-set for `OMPX_APU_RACE_CHECK=...:pruned`: the
/// pages of host-address ranges the `zc::check` static may-race pass proved
/// free of unordered concurrent access. The detector consults it on every
/// page stamp and skips shadow-state bookkeeping for covered pages — clocks,
/// sync edges, and every uncovered page keep full instrumentation, so no
/// report outside the proven-safe set can be lost.
///
/// A page is covered iff it holds bytes of at least one proven-safe range
/// and bytes of NO must-check range. Page stamps originate exclusively
/// from accesses to recorded allocations (the detector spans each access's
/// byte range outward to page granularity), so every stamp on a covered
/// page comes from a proven-safe buffer — skipping it cannot lose a true
/// report, even when the safe buffer only partially occupies the page.
/// A page shared with any must-check range stays fully instrumented.
///
/// Page numbers are intra-run coordinates. The two phases of a pruned run
/// share them by construction: the bump allocator hands out identical
/// addresses for identical (seed, config) runs, which the pruned-mode
/// benchmark gate re-verifies via checksum and wall-time identity.
class PruneFilter {
 public:
  PruneFilter() = default;

  /// Build from the static partition: outward page spans of `safe` minus
  /// outward page spans of `must_check` (either in any order, may touch).
  [[nodiscard]] static PruneFilter from_partition(
      const std::vector<mem::AddrRange>& safe,
      const std::vector<mem::AddrRange>& must_check,
      std::uint64_t page_bytes) {
    PruneFilter f;
    for (const mem::AddrRange& r : safe) {
      if (r.bytes != 0) {
        f.add(r.base.value / page_bytes,
              (r.base.value + r.bytes - 1) / page_bytes + 1);
      }
    }
    f.normalize();
    for (const mem::AddrRange& r : must_check) {
      if (r.bytes != 0) {
        f.subtract(r.base.value / page_bytes,
                   (r.base.value + r.bytes - 1) / page_bytes + 1);
      }
    }
    return f;
  }

  [[nodiscard]] bool empty() const { return spans_.empty(); }
  [[nodiscard]] std::uint64_t page_count() const {
    std::uint64_t n = 0;
    for (const Span& s : spans_) {
      n += s.end - s.first;
    }
    return n;
  }

  /// Whether every page of [first, end) is proven safe. The detector calls
  /// this once per access before falling back to the per-page walk: a
  /// proven-safe buffer's whole page span lies inside one span here, so a
  /// multi-thousand-page access prunes in a single (memoized) lookup.
  [[nodiscard]] bool covers_range(std::uint64_t first,
                                  std::uint64_t end) const {
    if (first >= end) {
      return true;
    }
    if (last_ < spans_.size()) {
      const Span& s = spans_[last_];
      if (first >= s.first && end <= s.end) {
        return true;
      }
    }
    auto it = std::upper_bound(spans_.begin(), spans_.end(), first,
                               [](std::uint64_t p, const Span& s) {
                                 return p < s.first;
                               });
    if (it == spans_.begin()) {
      return false;
    }
    --it;
    if (first >= it->first && end <= it->end) {
      last_ = static_cast<std::size_t>(it - spans_.begin());
      return true;
    }
    return false;
  }

  /// Whether `page` is proven safe (skip its shadow-state stamp). Queries
  /// arrive as consecutive pages of one buffer, so the last-hit span
  /// answers nearly every call without the binary search.
  [[nodiscard]] bool covers(std::uint64_t page) const {
    if (last_ < spans_.size()) {
      const Span& s = spans_[last_];
      if (page >= s.first && page < s.end) {
        return true;
      }
    }
    auto it = std::upper_bound(spans_.begin(), spans_.end(), page,
                               [](std::uint64_t p, const Span& s) {
                                 return p < s.first;
                               });
    if (it == spans_.begin()) {
      return false;
    }
    --it;
    if (page < it->end) {
      last_ = static_cast<std::size_t>(it - spans_.begin());
      return true;
    }
    return false;
  }

 private:
  struct Span {
    std::uint64_t first = 0;
    std::uint64_t end = 0;  ///< one past the last covered page
  };

  void add(std::uint64_t first, std::uint64_t end) {
    spans_.push_back(Span{first, end});
  }

  /// Remove [first, end) from the (sorted, disjoint) span set.
  void subtract(std::uint64_t first, std::uint64_t end) {
    std::vector<Span> out;
    out.reserve(spans_.size() + 1);
    for (const Span& s : spans_) {
      if (s.end <= first || s.first >= end) {
        out.push_back(s);
        continue;
      }
      if (s.first < first) {
        out.push_back(Span{s.first, first});
      }
      if (s.end > end) {
        out.push_back(Span{end, s.end});
      }
    }
    spans_ = std::move(out);
    last_ = SIZE_MAX;
  }

  void normalize() {
    std::sort(spans_.begin(), spans_.end(),
              [](const Span& a, const Span& b) { return a.first < b.first; });
    std::vector<Span> merged;
    for (const Span& s : spans_) {
      if (!merged.empty() && s.first <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, s.end);
      } else {
        merged.push_back(s);
      }
    }
    spans_ = std::move(merged);
  }

  std::vector<Span> spans_;  ///< sorted, disjoint
  mutable std::size_t last_ = SIZE_MAX;  ///< index of the last span hit
};

}  // namespace zc::race
