#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "zc/race/prune.hpp"
#include "zc/race/vector_clock.hpp"
#include "zc/sim/hooks.hpp"
#include "zc/trace/race_trace.hpp"

namespace zc::apu {
class Machine;
}
namespace zc::sim {
class Scheduler;
}

namespace zc::race {

/// Raised in abort mode when no custom abort handler is installed (the
/// offload stack installs one that raises `omp::OffloadError` instead).
class RaceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FastTrack-style happens-before race detector over the deterministic
/// scheduler (`OMPX_APU_RACE_CHECK=report|abort`).
///
/// The detector implements `sim::ConcurrencyHooks`: it maintains one vector
/// clock per actor (virtual thread or logical device task), joins clocks
/// along every release/acquire edge the synchronization primitives emit,
/// and checks each instrumented access — field-level (`race::on_read/
/// on_write`, `GuardedBy::get`) and page-level (kernel buffer accesses,
/// host touches) — against per-variable shadow state compressed to epochs:
/// the common same-actor/ordered case is a constant-time comparison, and a
/// full clock copy is only taken when an access must be retained for
/// reporting. A conflicting pair with no happens-before path produces one
/// deterministic `trace::RaceReport` naming both sites, both actors, and
/// both vector clocks; the variable is then poisoned so a given bug yields
/// exactly one report per run.
///
/// Two further analyses ride on the same clocks:
///  * a lock-order graph recording every nested mutex acquisition; a cycle
///    is reported as a potential deadlock even on schedules that never
///    deadlock;
///  * page-granularity host/GPU checking: a device task forks from its
///    dispatcher's clock, acquires its in-queue dependences, and releases
///    into its completion signal, so a host touch of a page a kernel
///    accessed is a race precisely when no map/copy/kernel-completion edge
///    interposes.
class Detector final : public sim::ConcurrencyHooks {
 public:
  enum class Mode { Report, Abort };

  Detector(Mode mode, std::uint64_t page_bytes);
  ~Detector() override;

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Install this detector as `sched`'s hooks; `detach()` (or destruction)
  /// uninstalls it.
  void attach(sim::Scheduler& sched);
  void detach();

  /// Called with the report just recorded when `mode == Abort`; replaces
  /// the default behavior of throwing `RaceError`.
  void set_abort_handler(std::function<void(const trace::RaceReport&)> f) {
    abort_handler_ = std::move(f);
  }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] trace::RaceTrace& trace() { return trace_; }
  [[nodiscard]] const trace::RaceTrace& trace() const { return trace_; }

  /// Install the statically proven-safe page set (`report:pruned`): page
  /// stamps covered by the filter skip shadow-state bookkeeping. Clocks,
  /// sync edges, and field-level accesses are untouched — happens-before
  /// transitivity is preserved for every page that stays instrumented.
  /// Non-owning; pass nullptr to clear. Counters report the split.
  void set_prune_filter(const PruneFilter* filter) { prune_ = filter; }
  [[nodiscard]] std::uint64_t pruned_stamps() const { return pruned_stamps_; }
  [[nodiscard]] std::uint64_t checked_stamps() const {
    return checked_stamps_;
  }

  /// --- sim::ConcurrencyHooks ----------------------------------------------
  void on_spawn(int parent_id, int child_id) override;
  void on_finish(int thread_id) override;
  void on_release(const void* obj, sim::SyncKind kind) override;
  void on_acquire(const void* obj, sim::SyncKind kind) override;
  void on_lock_acquired(const sim::Mutex& m) override;
  void on_access(const void* addr, std::size_t bytes, std::string_view what,
                 bool is_write) override;
  int on_task_begin(std::string_view what, int device) override;
  void on_task_pages(int task, std::uint64_t first_page, std::uint64_t pages,
                     bool is_write, std::string_view what) override;
  void on_host_pages(std::uint64_t first_page, std::uint64_t pages,
                     bool is_write, std::string_view what) override;
  void on_task_acquire(int task, const void* obj) override;
  void on_task_end(int task, const void* completion_obj) override;

 private:
  /// One clocked actor: a virtual thread or a logical device task.
  struct Actor {
    VectorClock clock;
    std::string name;
    bool is_task = false;
    bool done = false;  ///< finished thread / ended task: acts no further
    /// Cached immutable snapshot of `clock`, shared by every access
    /// recorded between two clock mutations.
    std::shared_ptr<const VectorClock> snap;
  };

  /// One retained access in a variable's shadow state.
  struct Access {
    Epoch epoch;
    bool is_write = false;
    std::string actor;
    std::string site;
    std::shared_ptr<const VectorClock> clock;
  };

  /// Shadow state of one instrumented variable or page.
  struct Shadow {
    Access write;               ///< last write (epoch.slot < 0 = none)
    std::vector<Access> reads;  ///< read frontier since the last write
    bool poisoned = false;      ///< already reported; suppress further checks
  };

  [[nodiscard]] int self_slot();  ///< slot of the running thread, -1 if none
  [[nodiscard]] int slot_for_thread(int thread_id);
  [[nodiscard]] Actor& mutate(int slot);  ///< actor with snapshot invalidated
  [[nodiscard]] std::shared_ptr<const VectorClock> snapshot(int slot);

  /// Check one access against `shadow` and update it; reports on conflict.
  /// `name` is called only when a report is actually emitted — the common
  /// no-race stamp must not pay for materializing the display name (for
  /// page stamps that is a fresh std::string per page per access).
  template <typename NameFn>
  void check(Shadow& shadow, trace::RaceKind kind, NameFn&& name, int slot,
             bool is_write, std::string_view site);
  void report(trace::RaceKind kind, const std::string& what,
              const Access& prev, const Access& cur);
  [[nodiscard]] std::string page_name(std::uint64_t page) const;

  Mode mode_;
  std::uint64_t page_bytes_;
  const PruneFilter* prune_ = nullptr;
  std::uint64_t pruned_stamps_ = 0;
  std::uint64_t checked_stamps_ = 0;
  sim::Scheduler* sched_ = nullptr;
  std::function<void(const trace::RaceReport&)> abort_handler_;
  trace::RaceTrace trace_;

  std::vector<Actor> actors_;                   ///< indexed by slot
  std::unordered_map<int, int> thread_slot_;    ///< VirtualThread id -> slot
  /// Thread slot -> its most recent task slot, for sequential slot reuse:
  /// when a dispatcher already covers its previous task's epoch (it waited
  /// on the kernel), the next task takes the same slot at value+1. Covering
  /// the new epoch then soundly implies covering every older one on the
  /// slot (each is ordered before its successor), so a dispatch-wait loop
  /// uses one slot forever instead of one per kernel. Unordered in-flight
  /// tasks never reuse — they keep fresh slots and full race sensitivity.
  std::unordered_map<int, int> thread_task_slot_;
  /// Joined clocks of finished threads: a thread spawned outside any
  /// virtual thread (a later `run()` round) is ordered after them.
  VectorClock drain_;
  std::unordered_map<const void*, VectorClock> sync_;  ///< per sync object L
  std::unordered_map<const void*, Shadow> vars_;
  std::unordered_map<std::uint64_t, Shadow> pages_;

  /// --- retired-task slot GC -----------------------------------------------
  /// Device tasks are born and retired once per kernel dispatch, and every
  /// host thread that waits on a completion signal inherits the task's clock
  /// component — unpruned, clocks grow O(total kernels) and every join turns
  /// quadratic. A retired slot whose epochs no longer appear in any shadow
  /// can never influence a covers() check again, so it is dropped from every
  /// clock (periodically, amortized over task ends).
  std::set<int> retired_;  ///< ended task slots not yet pruned everywhere
  int ends_since_compact_ = 0;
  static constexpr int kCompactEvery = 128;
  void compact();

  /// --- lock-order graph ---------------------------------------------------
  struct LockEdge {
    std::vector<const sim::Mutex*> out;  ///< successors (held -> later)
  };
  std::map<const sim::Mutex*, LockEdge> lock_graph_;
  std::map<std::pair<const sim::Mutex*, const sim::Mutex*>, std::string>
      edge_example_;  ///< "thread 'x' acquired 'b' while holding 'a'"
  std::set<std::string> reported_cycles_;  ///< canonical cycle keys

  [[nodiscard]] bool lock_path(const sim::Mutex* from, const sim::Mutex* to,
                               std::vector<const sim::Mutex*>& path,
                               std::set<const sim::Mutex*>& seen) const;
};

/// Build a detector according to `machine.env().race_check` and attach it
/// to the machine's scheduler; returns null when the mode is off.
[[nodiscard]] std::unique_ptr<Detector> make_detector(apu::Machine& machine);

}  // namespace zc::race
