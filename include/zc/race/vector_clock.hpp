#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace zc::race {

/// One component of a vector clock: actor `slot` at logical time `value`.
/// FastTrack's "epoch" — the O(1) representation of a single access when no
/// concurrent readers exist.
struct Epoch {
  int slot = -1;  ///< -1 = no access recorded yet
  std::uint64_t value = 0;

  [[nodiscard]] bool valid() const { return slot >= 0; }
};

/// A sparse vector clock over actor slots (virtual threads and logical
/// device tasks). Components never decrease; absent components are zero.
///
/// Stored as a sorted flat vector: clocks stay small (slot GC bounds them),
/// and the detector joins/copies them on every sync edge — contiguous
/// storage makes the common join (whose component sets already match) a
/// pure in-place max with zero allocation, where a node-based map pays a
/// tree walk plus an allocation per component.
class VectorClock {
 public:
  [[nodiscard]] std::uint64_t of(int slot) const {
    const auto it = find(slot);
    return it != clock_.end() && it->first == slot ? it->second : 0;
  }

  void set(int slot, std::uint64_t value) {
    const auto it = find(slot);
    if (it != clock_.end() && it->first == slot) {
      if (value > it->second) {
        it->second = value;
      }
      return;
    }
    clock_.insert(it, {slot, value});
  }

  void tick(int slot) {
    const auto it = find(slot);
    if (it != clock_.end() && it->first == slot) {
      ++it->second;
      return;
    }
    clock_.insert(it, {slot, 1});
  }

  /// Componentwise maximum (the join of two happens-before frontiers).
  void join(const VectorClock& other) {
    if (other.clock_.empty()) {
      return;
    }
    // Fast path: every slot of `other` already exists here — max in place.
    std::size_t i = 0;
    bool subset = true;
    for (const auto& [slot, value] : other.clock_) {
      while (i < clock_.size() && clock_[i].first < slot) {
        ++i;
      }
      if (i == clock_.size() || clock_[i].first != slot) {
        subset = false;
        break;
      }
      if (value > clock_[i].second) {
        clock_[i].second = value;
      }
    }
    if (subset) {
      return;
    }
    std::vector<std::pair<int, std::uint64_t>> merged;
    merged.reserve(clock_.size() + other.clock_.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < clock_.size() || b < other.clock_.size()) {
      if (b == other.clock_.size() ||
          (a < clock_.size() && clock_[a].first < other.clock_[b].first)) {
        merged.push_back(clock_[a++]);
      } else if (a == clock_.size() ||
                 other.clock_[b].first < clock_[a].first) {
        merged.push_back(other.clock_[b++]);
      } else {
        merged.push_back({clock_[a].first,
                          std::max(clock_[a].second, other.clock_[b].second)});
        ++a;
        ++b;
      }
    }
    clock_ = std::move(merged);
  }

  /// Whether every component of *this is <= the matching one in `other`
  /// (i.e. everything known here happened-before `other`'s frontier).
  [[nodiscard]] bool leq(const VectorClock& other) const {
    for (const auto& [slot, value] : clock_) {
      if (value > other.of(slot)) {
        return false;
      }
    }
    return true;
  }

  /// Whether the access stamped `e` happened-before this frontier.
  [[nodiscard]] bool covers(Epoch e) const {
    return e.valid() && e.value <= of(e.slot);
  }

  [[nodiscard]] bool empty() const { return clock_.empty(); }
  [[nodiscard]] std::size_t size() const { return clock_.size(); }

  /// Render as "{0:3, 2:7}" for race reports.
  [[nodiscard]] std::string render() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [slot, value] : clock_) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += std::to_string(slot) + ":" + std::to_string(value);
    }
    out += "}";
    return out;
  }

  [[nodiscard]] const std::vector<std::pair<int, std::uint64_t>>& components()
      const {
    return clock_;
  }

  /// Drop every component whose slot satisfies `dead`. Used by the
  /// detector's slot garbage collection: once no shadow epoch references a
  /// retired device task's slot, that component can never influence a
  /// covers() check again and only bloats joins/copies.
  template <typename Pred>
  std::size_t prune(Pred dead) {
    return std::erase_if(clock_,
                         [&dead](const auto& kv) { return dead(kv.first); });
  }

 private:
  using Iter = std::vector<std::pair<int, std::uint64_t>>::iterator;
  using ConstIter = std::vector<std::pair<int, std::uint64_t>>::const_iterator;

  [[nodiscard]] Iter find(int slot) {
    return std::lower_bound(
        clock_.begin(), clock_.end(), slot,
        [](const std::pair<int, std::uint64_t>& e, int s) {
          return e.first < s;
        });
  }
  [[nodiscard]] ConstIter find(int slot) const {
    return std::lower_bound(
        clock_.begin(), clock_.end(), slot,
        [](const std::pair<int, std::uint64_t>& e, int s) {
          return e.first < s;
        });
  }

  std::vector<std::pair<int, std::uint64_t>> clock_;  ///< sorted by slot
};

}  // namespace zc::race
