#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace zc::race {

/// One component of a vector clock: actor `slot` at logical time `value`.
/// FastTrack's "epoch" — the O(1) representation of a single access when no
/// concurrent readers exist.
struct Epoch {
  int slot = -1;  ///< -1 = no access recorded yet
  std::uint64_t value = 0;

  [[nodiscard]] bool valid() const { return slot >= 0; }
};

/// A sparse vector clock over actor slots (virtual threads and logical
/// device tasks). Components never decrease; absent components are zero.
class VectorClock {
 public:
  [[nodiscard]] std::uint64_t of(int slot) const {
    const auto it = clock_.find(slot);
    return it == clock_.end() ? 0 : it->second;
  }

  void set(int slot, std::uint64_t value) {
    std::uint64_t& c = clock_[slot];
    if (value > c) {
      c = value;
    }
  }

  void tick(int slot) { ++clock_[slot]; }

  /// Componentwise maximum (the join of two happens-before frontiers).
  void join(const VectorClock& other) {
    for (const auto& [slot, value] : other.clock_) {
      set(slot, value);
    }
  }

  /// Whether every component of *this is <= the matching one in `other`
  /// (i.e. everything known here happened-before `other`'s frontier).
  [[nodiscard]] bool leq(const VectorClock& other) const {
    for (const auto& [slot, value] : clock_) {
      if (value > other.of(slot)) {
        return false;
      }
    }
    return true;
  }

  /// Whether the access stamped `e` happened-before this frontier.
  [[nodiscard]] bool covers(Epoch e) const {
    return e.valid() && e.value <= of(e.slot);
  }

  [[nodiscard]] bool empty() const { return clock_.empty(); }
  [[nodiscard]] std::size_t size() const { return clock_.size(); }

  /// Render as "{0:3, 2:7}" for race reports.
  [[nodiscard]] std::string render() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [slot, value] : clock_) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += std::to_string(slot) + ":" + std::to_string(value);
    }
    out += "}";
    return out;
  }

  [[nodiscard]] const std::map<int, std::uint64_t>& components() const {
    return clock_;
  }

  /// Drop every component whose slot satisfies `dead`. Used by the
  /// detector's slot garbage collection: once no shadow epoch references a
  /// retired device task's slot, that component can never influence a
  /// covers() check again and only bloats joins/copies.
  template <typename Pred>
  std::size_t prune(Pred dead) {
    return std::erase_if(clock_,
                         [&dead](const auto& kv) { return dead(kv.first); });
  }

 private:
  std::map<int, std::uint64_t> clock_;
};

}  // namespace zc::race
