#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace zc::stats {

/// Minimal multi-series line chart rendered as text — enough to eyeball the
/// shape of the paper's Fig. 3/4 ratio curves in a terminal. Each series is
/// a vector of y values over shared x labels.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::vector<std::string> x_labels);

  void add_series(std::string name, std::vector<double> ys);

  /// Render `height` rows tall. Marks series points with their index digit
  /// ('0', '1', ...); coincident points show the highest series index.
  void print(std::ostream& os, int height = 12) const;

 private:
  std::string title_;
  std::vector<std::string> x_labels_;
  struct Series {
    std::string name;
    std::vector<double> ys;
  };
  std::vector<Series> series_;
};

}  // namespace zc::stats
