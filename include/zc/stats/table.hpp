#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace zc::stats {

/// Fixed-width text table, used by the benchmark harness to print
/// paper-style tables (Tables I-III) and figure series.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` significant decimals.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  /// Convenience: format an integer with thousands separators (1,124,258).
  [[nodiscard]] static std::string count(std::uint64_t v);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Render as CSV (no padding).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zc::stats
