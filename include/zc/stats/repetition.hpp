#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "zc/stats/summary.hpp"

namespace zc::stats {

/// Measurements from repeating one experiment configuration.
struct RepeatedRuns {
  std::vector<sim::Duration> times;

  [[nodiscard]] Summary summary() const { return summarize(times); }
  [[nodiscard]] sim::Duration median_time() const { return median(times); }
  [[nodiscard]] double cov() const { return summary().cov(); }
};

/// Run `run(seed)` `reps` times with seeds base_seed+1, base_seed+2, ...
/// (matching the paper's repetition methodology: 8 runs for SPECaccel,
/// 4 for QMCPack, medians reported, CoV as robustness evidence).
[[nodiscard]] RepeatedRuns repeat(
    int reps, std::uint64_t base_seed,
    const std::function<sim::Duration(std::uint64_t seed)>& run);

/// The paper's headline metric: median(Copy) / median(config).
/// Ratios above 1 mean the zero-copy configuration is faster.
[[nodiscard]] double ratio_of_medians(const RepeatedRuns& copy,
                                      const RepeatedRuns& config);

}  // namespace zc::stats
