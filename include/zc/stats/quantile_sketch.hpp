#pragma once

#include <cstdint>
#include <vector>

namespace zc::stats {

/// Streaming quantile estimator with fixed memory, built for the service
/// stats pipeline: one sketch per tenant metric answers p50/p99/p999 without
/// buffering every job latency the way `SortedSamples` must.
///
/// The design is a fixed-bin HDR histogram: each non-negative sample lands in
/// a log-spaced bucket derived from its binary exponent (`frexp`) plus a
/// linear subdivision of the mantissa into `kSubBuckets` sub-buckets. Bucket
/// boundaries are exact powers-of-two arithmetic — no `log()` calls — so the
/// same sample stream produces the same bins on every platform, and quantile
/// answers are bit-identical across reruns (a requirement the service
/// determinism suite asserts).
///
/// Accuracy: any quantile's returned representative differs from the true
/// order statistic of the recorded stream by at most `kRelativeError`
/// relative error (bucket midpoint of a bucket whose width is 1/kSubBuckets
/// of its lower edge). `min()`/`max()`/`sum()`/`count()` are exact.
class QuantileSketch {
 public:
  /// Mantissa subdivisions per binary exponent. 128 sub-buckets bound the
  /// relative error of any quantile by 1/256 (~0.4%).
  static constexpr int kSubBuckets = 128;
  static constexpr double kRelativeError = 0.5 / kSubBuckets;

  QuantileSketch();

  /// Record one sample. Values must be finite and non-negative (the service
  /// records latencies in microseconds); throws std::invalid_argument
  /// otherwise.
  void record(double value);

  /// p-quantile (0 <= p <= 1). Returns the midpoint of the bucket holding
  /// the order statistic at rank floor(p * (count - 1)), clamped to the
  /// exact [min, max] envelope. Throws std::invalid_argument on an empty
  /// sketch or p outside [0, 1].
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const;  ///< exact; throws when empty
  [[nodiscard]] double max() const;  ///< exact; throws when empty
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;  ///< exact; throws when empty

  /// Fold another sketch's bins into this one (exact: the merged sketch is
  /// identical to one that recorded both streams).
  void merge(const QuantileSketch& other);

 private:
  // Exponent clamp: values in [2^-33, 2^64) are bucketed at full precision;
  // anything smaller collapses into the bottom bin, anything larger into the
  // top bin (still counted exactly, just with saturated representatives).
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 63;
  static constexpr int kExpCount = kMaxExp - kMinExp + 1;

  [[nodiscard]] static int bucket_of(double value);
  [[nodiscard]] static double representative(int bucket);

  std::vector<std::uint64_t> bins_;  ///< kExpCount * kSubBuckets, positive values
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace zc::stats
