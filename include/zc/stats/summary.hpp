#pragma once

#include <vector>

#include "zc/sim/time.hpp"

namespace zc::stats {

/// Five-number-ish summary of repeated measurements.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;

  /// Coefficient of variation (stddev/mean), the robustness statistic the
  /// paper reports; 0 for degenerate inputs.
  [[nodiscard]] double cov() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Summarize raw samples. Throws std::invalid_argument on empty input.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Summarize durations in seconds.
[[nodiscard]] Summary summarize(const std::vector<sim::Duration>& samples);

/// Median of raw samples (throws on empty).
[[nodiscard]] double median(std::vector<double> samples);

/// p-quantile (0 <= p <= 1) with linear interpolation between order
/// statistics (throws on empty input or p outside [0,1]).
[[nodiscard]] double percentile(std::vector<double> samples, double p);

/// Median execution time of repeated runs.
[[nodiscard]] sim::Duration median(const std::vector<sim::Duration>& samples);

}  // namespace zc::stats
