#pragma once

#include <vector>

#include "zc/sim/time.hpp"

namespace zc::stats {

/// Five-number-ish summary of repeated measurements.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;

  /// Coefficient of variation (stddev/mean), the robustness statistic the
  /// paper reports; 0 for degenerate inputs.
  [[nodiscard]] double cov() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Summarize raw samples. Throws std::invalid_argument on empty input.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Summarize durations in seconds.
[[nodiscard]] Summary summarize(const std::vector<sim::Duration>& samples);

/// Median of raw samples (throws on empty).
[[nodiscard]] double median(std::vector<double> samples);

/// p-quantile (0 <= p <= 1) with linear interpolation between order
/// statistics (throws on empty input or p outside [0,1]).
///
/// One call costs two `nth_element` selections on a single internal copy
/// (O(n)), not a full sort. Callers that query several percentiles of the
/// same sample set should build one `SortedSamples` instead — the
/// service-stats pattern (p50/p99/p999 per metric) pays one sort total
/// rather than one selection pass per percentile.
[[nodiscard]] double percentile(const std::vector<double>& samples, double p);

/// A sample set sorted once, answering any number of quantile queries in
/// O(1) each. This is the shared-copy API `percentile`'s doc comment points
/// multi-percentile callers at.
class SortedSamples {
 public:
  /// Takes ownership and sorts (throws std::invalid_argument on empty).
  explicit SortedSamples(std::vector<double> samples);

  /// p-quantile with the same interpolation rule as `percentile`.
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

/// Median execution time of repeated runs.
[[nodiscard]] sim::Duration median(const std::vector<sim::Duration>& samples);

}  // namespace zc::stats
