#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zc::omp {

/// A `#pragma omp declare target` global variable as the compiler baked it
/// into the binary: its name and size. The runtime materializes host
/// storage at image load; whether the device gets its own copy or a pointer
/// back to host storage depends on the configuration (§IV-B vs §IV-C).
struct GlobalVar {
  std::string name;
  std::uint64_t bytes = 0;
};

/// Compiler-produced properties of the application binary that steer the
/// runtime: the `requires unified_shared_memory` flag and the declare-target
/// global table. (An application cannot change these at run time — the
/// paper stresses that USM-built binaries are less portable for exactly
/// this reason.)
struct ProgramBinary {
  std::string name = "a.out";
  bool requires_unified_shared_memory = false;
  std::vector<GlobalVar> globals;
};

}  // namespace zc::omp
