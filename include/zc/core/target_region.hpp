#pragma once

#include <functional>
#include <string>
#include <vector>

#include "zc/core/mapping.hpp"
#include "zc/hsa/kernel.hpp"
#include "zc/sim/time.hpp"

namespace zc::omp {

/// Translates the host addresses a target-region body was written against
/// into the device addresses the kernel actually receives: the present-
/// table mapping for Copy-managed data, identity for zero-copy data and
/// for raw device pointers (`omp_target_alloc` memory used via
/// `is_device_ptr`).
class ArgTranslator {
 public:
  ArgTranslator(const PresentTable& table, bool zero_copy_default,
                const mem::AddressSpace* space = nullptr)
      : table_{&table}, space_{space}, zero_copy_default_{zero_copy_default} {}

  /// Device address for a host address. Under Legacy Copy an unmapped host
  /// address is a program error (throws std::invalid_argument) — exactly
  /// the failure a discrete GPU would produce.
  [[nodiscard]] mem::VirtAddr device(mem::VirtAddr host) const;

  /// Convenience for typed offsets.
  [[nodiscard]] mem::VirtAddr device(mem::VirtAddr host,
                                     std::uint64_t byte_offset) const {
    return device(host) + byte_offset;
  }

 private:
  const PresentTable* table_;
  const mem::AddressSpace* space_;
  bool zero_copy_default_;
};

/// A buffer the kernel accesses that is mapped by an *enclosing* data
/// region rather than a map clause on the target construct itself (the
/// "target data + bare target" OpenMP pattern). No mapping operation is
/// performed for it — in particular, Eager Maps issues no prefault — but it
/// participates in fault/TLB accounting and argument translation.
struct BufferUse {
  mem::VirtAddr addr;
  std::uint64_t bytes = 0;
  hsa::Access access = hsa::Access::ReadWrite;
};

/// An `omp target` construct: map clauses, buffers used from enclosing data
/// environments, a modeled compute time, and an optional functional body
/// that receives translated device pointers.
struct TargetRegion {
  std::string name;
  std::vector<MapEntry> maps;
  std::vector<BufferUse> uses;
  sim::Duration compute;
  std::function<void(hsa::KernelContext&, const ArgTranslator&)> body;
  /// OpenMP device number (socket) the region offloads to.
  int device = 0;
};

}  // namespace zc::omp
