#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "zc/mem/address.hpp"

namespace zc::omp {

/// OpenMP map-type modifiers. `Release` and `Delete` are exit-only (used
/// with `target exit data`): release decrements the reference count without
/// a transfer; delete drops the mapping regardless of the count.
enum class MapType {
  To,      ///< host-to-device on entry
  From,    ///< device-to-host on exit
  ToFrom,  ///< both
  Alloc,   ///< presence only; no transfers
  Release, ///< exit: decrement refcount, no transfer
  Delete,  ///< exit: force removal, no transfer
};

[[nodiscard]] constexpr const char* to_string(MapType t) {
  switch (t) {
    case MapType::To:
      return "to";
    case MapType::From:
      return "from";
    case MapType::ToFrom:
      return "tofrom";
    case MapType::Alloc:
      return "alloc";
    case MapType::Release:
      return "release";
    case MapType::Delete:
      return "delete";
  }
  return "?";
}

[[nodiscard]] constexpr bool copies_to_device(MapType t) {
  return t == MapType::To || t == MapType::ToFrom;
}
[[nodiscard]] constexpr bool copies_to_host(MapType t) {
  return t == MapType::From || t == MapType::ToFrom;
}
/// Map types only meaningful on `target exit data`.
[[nodiscard]] constexpr bool exit_only(MapType t) {
  return t == MapType::Release || t == MapType::Delete;
}

/// One map clause instance: `map(<always,>? <type>: ptr[:bytes])`.
struct MapEntry {
  mem::VirtAddr host_ptr;
  std::uint64_t bytes = 0;
  MapType type = MapType::ToFrom;
  bool always = false;

  [[nodiscard]] mem::AddrRange host_range() const {
    return mem::AddrRange{host_ptr, bytes};
  }

  [[nodiscard]] static MapEntry to(mem::VirtAddr p, std::uint64_t n) {
    return MapEntry{p, n, MapType::To, false};
  }
  [[nodiscard]] static MapEntry from(mem::VirtAddr p, std::uint64_t n) {
    return MapEntry{p, n, MapType::From, false};
  }
  [[nodiscard]] static MapEntry tofrom(mem::VirtAddr p, std::uint64_t n) {
    return MapEntry{p, n, MapType::ToFrom, false};
  }
  [[nodiscard]] static MapEntry alloc(mem::VirtAddr p, std::uint64_t n) {
    return MapEntry{p, n, MapType::Alloc, false};
  }
  [[nodiscard]] static MapEntry always_to(mem::VirtAddr p, std::uint64_t n) {
    return MapEntry{p, n, MapType::To, true};
  }
  [[nodiscard]] static MapEntry always_tofrom(mem::VirtAddr p,
                                              std::uint64_t n) {
    return MapEntry{p, n, MapType::ToFrom, true};
  }
  [[nodiscard]] static MapEntry release(mem::VirtAddr p, std::uint64_t n) {
    return MapEntry{p, n, MapType::Release, false};
  }
  [[nodiscard]] static MapEntry del(mem::VirtAddr p, std::uint64_t n) {
    return MapEntry{p, n, MapType::Delete, false};
  }
};

/// An entry of the runtime's present table: one mapped host range and the
/// device storage backing it.
struct PresentEntry {
  mem::AddrRange host;
  mem::VirtAddr device_base;  ///< == host.base under zero-copy
  std::uint64_t refcount = 0;
  bool pinned = false;  ///< never deleted (declare-target globals)
  /// Entry created by the OOM degradation path: `device_base == host.base`
  /// (zero-copy semantics inside a Copy-managed configuration), so no
  /// transfers are issued for it and no pool storage is freed with it.
  bool degraded = false;

  [[nodiscard]] mem::VirtAddr device_addr(mem::VirtAddr host_addr) const {
    return device_base + (host_addr - host.base);
  }
};

/// libomptarget-style host->device mapping table with reference counts.
///
/// Lookups resolve any address inside a mapped range (the OpenMP rules for
/// contained array sections); overlapping-but-not-contained ranges are
/// rejected as they would be by a conforming program.
class PresentTable {
 public:
  /// Insert a new range (must not partially overlap an existing one).
  PresentEntry& insert(mem::AddrRange host, mem::VirtAddr device_base,
                       bool pinned = false);

  /// Entry whose host range contains `addr`, or nullptr.
  [[nodiscard]] PresentEntry* lookup(mem::VirtAddr addr);
  [[nodiscard]] const PresentEntry* lookup(mem::VirtAddr addr) const;

  /// Entry containing the whole `range`; throws std::invalid_argument if
  /// `range` straddles the mapped range's end.
  [[nodiscard]] PresentEntry* lookup_range(mem::AddrRange range);

  /// Remove the entry with this host base.
  void erase(mem::VirtAddr host_base);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::uint64_t, PresentEntry> entries_;  // keyed by host base
  /// Most-recently-resolved entry: kernels translate many addresses out of
  /// the same mapped buffer back-to-back, so this answers nearly every
  /// lookup without the O(log n) tree walk. std::map nodes are stable, so
  /// the pointer survives unrelated inserts; `erase` drops it.
  PresentEntry* mru_ = nullptr;
};

}  // namespace zc::omp
