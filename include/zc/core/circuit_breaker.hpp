#pragma once

#include <cstdint>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::omp {

/// Per-device circuit breaker over watchdog trips and degraded-mode events.
///
/// Classic three-state breaker in virtual time: `Closed` (healthy) counts
/// events in a sliding window and opens when they cross the threshold;
/// `Open` pins the device to its safest mapping configuration (zero-copy
/// with eager prefault — no DMA engines, no demand paging storms to hang
/// in) until a quiet `cooldown` has passed; `HalfOpen` probes normal
/// behaviour, re-opening on the first further event and closing after a
/// second quiet cooldown. Transitions are applied lazily by `advance_to`
/// (there is no background fiber); the caller records the returned
/// transitions into the fault trace.
///
/// Not internally synchronized: the owner (OffloadRuntime) guards it with
/// its table mutex, like the rest of the per-device bookkeeping.
class CircuitBreaker {
 public:
  enum class State { Closed, Open, HalfOpen };

  CircuitBreaker(int trip_threshold, sim::Duration window,
                 sim::Duration cooldown)
      : threshold_{trip_threshold}, window_{window}, cooldown_{cooldown} {}

  struct Transition {
    State to = State::Closed;
    sim::TimePoint at;
  };

  /// Apply the time-based transitions (Open -> HalfOpen -> Closed) that
  /// became due by `now`; returns them in order (possibly empty).
  [[nodiscard]] std::vector<Transition> advance_to(sim::TimePoint now);

  /// Record one watchdog trip or degraded-mode event at `now`. May open
  /// (or re-open) the breaker; returns every transition that occurred,
  /// including time-based ones that were due first.
  [[nodiscard]] std::vector<Transition> record_trip(sim::TimePoint now);

  /// State as of the last `advance_to`/`record_trip` (no lazy update).
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool open() const { return state_ == State::Open; }

  [[nodiscard]] std::uint64_t total_trips() const { return total_trips_; }
  [[nodiscard]] std::uint64_t times_opened() const { return times_opened_; }

 private:
  int threshold_;
  sim::Duration window_;
  sim::Duration cooldown_;
  State state_ = State::Closed;
  sim::TimePoint opened_at_;
  std::vector<sim::TimePoint> recent_;  // trips within the sliding window
  std::uint64_t total_trips_ = 0;
  std::uint64_t times_opened_ = 0;
};

[[nodiscard]] constexpr const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::Closed:
      return "closed";
    case CircuitBreaker::State::Open:
      return "open";
    case CircuitBreaker::State::HalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace zc::omp
