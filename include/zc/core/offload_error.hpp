#pragma once

#include <stdexcept>
#include <string>

#include "zc/mem/address.hpp"

namespace zc::omp {

/// Unified error taxonomy of the OpenMP offload runtime. Every structured
/// failure the runtime raises — misuse it detects as well as resource
/// exhaustion it could not degrade around — carries one of these codes so
/// callers (and tests) can dispatch on *what* failed without parsing
/// `what()` strings.
enum class ErrorCode {
  InvalidArgument,   ///< malformed request (zero-size global/map entry)
  UnknownGlobal,     ///< declare-target global name not in the image
  MappingViolation,  ///< OpenMP mapping-semantics violation
  DeviceOutOfRange,  ///< device number outside [0, omp_get_num_devices())
  TaskMisuse,        ///< nowait-task protocol violation (double wait, ...)
  OutOfMemory,       ///< device pool exhausted with no degraded mode left
  PrefaultFailed,    ///< svm_attributes_set retries exhausted, XNACK off
  CopyFailed,        ///< async DMA copy failed after the bounded retry
  OperationHung,     ///< watchdog aborted a hung op; no replay budget left
  DataRace,          ///< race detector in abort mode flagged an access pair
  JobShed,           ///< service shed the job under overload (retry later)
  CheckViolation,    ///< zc::check static verifier (abort mode) flagged ops
};

[[nodiscard]] constexpr const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::InvalidArgument:
      return "invalid-argument";
    case ErrorCode::UnknownGlobal:
      return "unknown-global";
    case ErrorCode::MappingViolation:
      return "mapping-violation";
    case ErrorCode::DeviceOutOfRange:
      return "device-out-of-range";
    case ErrorCode::TaskMisuse:
      return "task-misuse";
    case ErrorCode::OutOfMemory:
      return "out-of-memory";
    case ErrorCode::PrefaultFailed:
      return "prefault-failed";
    case ErrorCode::CopyFailed:
      return "copy-failed";
    case ErrorCode::OperationHung:
      return "operation-hung";
    case ErrorCode::DataRace:
      return "data-race";
    case ErrorCode::JobShed:
      return "job-shed";
    case ErrorCode::CheckViolation:
      return "check-violation";
  }
  return "?";
}

/// Structured runtime failure: the code, the device it concerns (-1 when
/// no single device is implicated), and the host range involved (empty
/// when the failure is not about a specific range). Only the offending
/// construct fails — the runtime's tables stay consistent, so a handler
/// can continue issuing work.
class OffloadError : public std::runtime_error {
 public:
  OffloadError(ErrorCode code, const std::string& what, int device = -1,
               mem::AddrRange host = {})
      : std::runtime_error{std::string{"["} + omp::to_string(code) + "] " +
                           what},
        code_{code},
        device_{device},
        host_{host} {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] int device() const { return device_; }
  [[nodiscard]] mem::AddrRange host_range() const { return host_; }

 private:
  ErrorCode code_;
  int device_;
  mem::AddrRange host_;
};

/// Raised for OpenMP mapping-semantics violations (e.g. a Legacy Copy
/// kernel referencing memory no enclosing construct mapped). A subclass of
/// `OffloadError` so existing handlers keep working while new code can
/// catch the whole taxonomy at once.
class MappingError : public OffloadError {
 public:
  explicit MappingError(const std::string& what,
                        ErrorCode code = ErrorCode::MappingViolation,
                        int device = -1, mem::AddrRange host = {})
      : OffloadError{code, what, device, host} {}
};

}  // namespace zc::omp
