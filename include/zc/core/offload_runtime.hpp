#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "zc/adapt/policy.hpp"
#include "zc/core/circuit_breaker.hpp"
#include "zc/core/config.hpp"
#include "zc/core/mapping.hpp"
#include "zc/core/offload_error.hpp"
#include "zc/core/program.hpp"
#include "zc/core/target_region.hpp"
#include "zc/hsa/runtime.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/decision_trace.hpp"

namespace zc::check {
class Recorder;
}

namespace zc::omp {

/// Handle for an `omp target ... nowait` region: the kernel is in flight;
/// `OffloadRuntime::target_wait` completes it (wait + data-end). A task
/// must be waited exactly once before destruction of the runtime.
class TargetTask {
 public:
  TargetTask() = default;

  [[nodiscard]] bool valid() const { return !maps_.empty() || kernel_named_; }
  [[nodiscard]] bool completed() const { return completed_; }

 private:
  friend class OffloadRuntime;
  hsa::Signal signal_;
  std::vector<MapEntry> maps_;
  /// The dispatched launch, value-captured body included, kept so
  /// `target_wait` can replay the kernel if the watchdog aborts it.
  hsa::KernelLaunch launch_;
  int host_thread_ = 0;
  int device_ = 0;
  /// Pairs the nowait dispatch with its wait in the recorded offload IR.
  std::uint64_t check_token_ = 0;
  bool kernel_named_ = false;
  bool completed_ = false;
};

/// The OpenMP target-offloading runtime — the system the paper studies.
///
/// One instance models `libomptarget` for one application process on one
/// device. At construction the runtime resolves which of the four
/// configurations applies (see `resolve_config`); all data-management
/// behaviour then flows from that choice:
///
///  * **Legacy Copy** — maps allocate ROCr pool memory, transfer data over
///    the SDMA engines, and reference-count the present table; kernels
///    receive translated device pointers.
///  * **Unified Shared Memory** — maps are no-ops; kernels receive host
///    pointers; declare-target globals resolve through double indirection
///    to host storage.
///  * **Implicit Zero-Copy** — like USM for mapped data, but declare-target
///    globals keep their per-image device copies and are synchronized by
///    DMA when mapped (§IV-C).
///  * **Eager Maps** — Implicit Zero-Copy plus a `svm_attributes_set`
///    GPU-page-table prefault on *every* map operation (§IV-D).
///  * **Adaptive Maps** — the `zc::adapt` policy engine classifies each
///    non-global mapped region as DMA-copy, zero-copy, or eager prefault
///    from observed page state, inside the present-table transaction;
///    globals keep the Copy behaviour. Every fresh classification is
///    recorded in the `DecisionTrace`.
///
/// Image load (GPU code objects, runtime support structures, device copies
/// of globals) happens lazily on the first runtime call, and each host
/// thread pays a one-time initialization on its first call — mirroring the
/// initialization traffic visible in the paper's Table I.
class OffloadRuntime {
 public:
  OffloadRuntime(hsa::Runtime& hsa, ProgramBinary program);

  [[nodiscard]] RuntimeConfig config() const { return config_; }
  [[nodiscard]] bool zero_copy() const { return is_zero_copy(config_); }
  [[nodiscard]] const ProgramBinary& program() const { return program_; }

  /// Number of OpenMP devices (APU sockets) visible to this process.
  [[nodiscard]] int device_count() const;

  /// Device number requesting automatic placement: `target` and
  /// `target_nowait` resolve it to the socket homing the most mapped
  /// bytes, sending compute to the data instead of the reverse.
  static constexpr int kDeviceAuto = -1;

  /// --- host-side memory (timed helpers for workload code) ---------------
  /// `home_socket` is the NUMA placement of the allocation (the socket of
  /// the thread that will first-touch it).
  mem::VirtAddr host_alloc(std::uint64_t bytes, std::string name,
                           int home_socket = 0);
  /// NUMA-policy variant: `FirstTouch` defers the home to the first
  /// materializing access, `Interleaved` stripes page homes round-robin
  /// across sockets (see `mem::Placement`).
  mem::VirtAddr host_alloc_placed(std::uint64_t bytes, std::string name,
                                  mem::Placement placement,
                                  int home_socket = 0);
  void host_free(mem::VirtAddr base);
  /// CPU first touch of the range (page materialization cost).
  void host_first_touch(mem::AddrRange range);
  /// Modeled host-side *read* of the range: stamps the pages for the race
  /// detector and records a HostRead op in the offload IR, but creates no
  /// pages and costs no time (reads of resident memory are free in this
  /// model). This is how workload code tells the checkers "the CPU
  /// consumes these bytes here" — e.g. reading back kernel results.
  void host_read(mem::AddrRange range);

  /// Attach (nullptr to detach) the `zc::check` record-only observer. The
  /// recorder is purely passive — it advances no time and changes no
  /// runtime behaviour — so a recorded run stays bit-identical to an
  /// unrecorded one. Declare-target globals of an already-loaded image are
  /// registered immediately; otherwise `load_image` registers them.
  void set_recorder(check::Recorder* recorder);
  [[nodiscard]] check::Recorder* recorder() const { return recorder_; }

  /// Host storage address of a declare-target global.
  [[nodiscard]] mem::VirtAddr global_host_addr(const std::string& name);

  /// --- OpenMP data API (all constructs accept a device number) -----------
  void target_data_begin(std::span<const MapEntry> maps, int device = 0);
  void target_data_end(std::span<const MapEntry> maps, int device = 0);

  /// Unstructured data mapping: `omp target enter data` / `exit data`.
  /// Enter accepts to/tofrom/alloc entries; exit additionally accepts
  /// `release` (decrement, no transfer) and `delete` (drop regardless of
  /// reference count).
  void target_enter_data(std::span<const MapEntry> maps, int device = 0);
  void target_exit_data(std::span<const MapEntry> maps, int device = 0);

  /// `omp target update to/from(...)` for already-mapped data.
  void target_update_to(const MapEntry& entry, int device = 0);
  void target_update_from(const MapEntry& entry, int device = 0);

  /// Execute an `omp target` region synchronously: implicit
  /// target_data_begin(maps), kernel launch + wait, target_data_end(maps).
  void target(const TargetRegion& region);

  /// `omp target ... nowait`: maps are entered and the kernel dispatched,
  /// but the calling thread does not wait; complete with `target_wait`.
  /// `depends` models OpenMP task dependences: the kernel does not start
  /// on the GPU before every listed task's kernel has completed (the host
  /// thread still returns immediately).
  [[nodiscard]] TargetTask target_nowait(
      const TargetRegion& region, std::span<const TargetTask*> depends = {});
  /// Wait for the kernel of a nowait target and run its data-end phase.
  void target_wait(TargetTask& task);

  /// --- device-pointer API (`omp_target_alloc` family) ---------------------
  /// Explicit device allocation. NOTE: this is the HIP-device-library path
  /// the paper warns about — the pool allocation happens in *every*
  /// configuration, so code using it forfeits the zero-copy benefit (the
  /// reason the paper builds QMCPack without the HIP device library).
  mem::VirtAddr device_alloc(std::uint64_t bytes, std::string name,
                             int device = 0);
  void device_free(mem::VirtAddr ptr);
  /// `omp_target_memcpy`: blocking DMA copy between any two simulated
  /// addresses (host or device). The copy runs on the SDMA engine of the
  /// socket homing the destination.
  void target_memcpy(mem::VirtAddr dst, mem::VirtAddr src,
                     std::uint64_t bytes);

  /// Migrate the allocation containing `range` onto `device`'s HBM
  /// (`hsa_amd_svm_prefetch` semantics; see `hsa::Runtime::migrate_pages`
  /// for timing and state effects). Cached Adaptive Maps decisions for the
  /// range are dropped — their placement inputs changed. Returns the pages
  /// that physically moved.
  std::uint64_t migrate_to_device(mem::AddrRange range, int device);

  /// --- introspection -------------------------------------------------------
  /// Read-only snapshot of one device's mapping table. Unguarded by design:
  /// callers are tests/benches inspecting a quiescent runtime (post-run, or
  /// in a single-threaded section between constructs); the runtime's own
  /// mutation paths all go through `table_mutex_` and are checker-enforced.
  [[nodiscard]] const PresentTable& present_table(int device = 0) const {
    return tables_.unguarded().at(static_cast<std::size_t>(device));
  }
  [[nodiscard]] hsa::Runtime& hsa() { return hsa_; }
  [[nodiscard]] bool image_loaded() const { return image_loaded_; }

  /// Multi-tenant service occupancy of `device`'s admission budget, in
  /// [0, 1]. The service layer updates it as jobs are admitted and retired;
  /// Adaptive Maps consumes it as `RegionFeatures::tenant_pressure` so a
  /// crowded device steers away from fresh pool allocations. Takes
  /// `table_mutex_` (the value is read inside present-table transactions).
  void set_service_pressure(int device, double occupancy);

  /// Adaptive Maps introspection, unguarded for the same quiescent-reader
  /// reason as `present_table`.
  [[nodiscard]] const trace::DecisionTrace& decision_trace() const {
    return decisions_.unguarded();
  }
  [[nodiscard]] const adapt::PolicyEngine& policy_engine() const {
    return adapt_.unguarded();
  }

  /// Whether one device's pool has ever failed an allocation this run (the
  /// sticky "memory pressure" flag the degraded Copy path sets and the
  /// Adaptive Maps policy consumes). Quiescent-reader accessor.
  [[nodiscard]] bool memory_pressure(int device = 0) const {
    return pressure_.unguarded().at(static_cast<std::size_t>(device)) != 0;
  }

  /// One device's circuit breaker (watchdog trips + degraded-mode events in
  /// a sliding virtual-time window; open pins the device to zero-copy with
  /// eager prefault). Quiescent-reader accessor.
  [[nodiscard]] const CircuitBreaker& breaker(int device = 0) const {
    return breakers_.unguarded().at(static_cast<std::size_t>(device));
  }

  /// Number of pool allocations modeled for image load and per-thread
  /// initialization (chosen to echo the initialization call counts visible
  /// in the paper's Table I).
  static constexpr int kImageLoadAllocs = 9;
  static constexpr int kImageLoadCopies = 3;
  static constexpr int kThreadInitAllocs = 10;

 private:
  /// An issued async DMA copy plus everything needed to resubmit it: the
  /// runtime's retry ladder waits for a batch, then re-issues each copy
  /// whose signal completed with an error payload.
  struct PendingCopy {
    hsa::Signal signal;
    mem::VirtAddr dst;
    mem::VirtAddr src;
    std::uint64_t bytes = 0;
    mem::AddrRange host;  ///< host side of the transfer (for diagnostics)
    bool with_handler = false;
    bool count_in_ledger = true;
    int device = 0;
  };

  void ensure_initialized();
  /// First caller loads the image; concurrent callers wait on the latch
  /// until it is fully loaded (shared by `ensure_initialized` and
  /// `global_host_addr`).
  void ensure_image_loaded();
  void load_image();

  /// Reject map lists with overlapping entries (OpenMP restriction).
  static void check_distinct(std::span<const MapEntry> maps);

  void check_device(int device) const;

  /// Resolve `kDeviceAuto`: bytes-weighted vote over the region's mapped
  /// and used buffers by home socket; ties break to the lower socket.
  [[nodiscard]] int resolve_device(const TargetRegion& region) const;

  /// Map semantics for one entry on region/data-begin; h2d copies are
  /// appended to `copies`.
  void begin_one(const MapEntry& entry, int device,
                 std::vector<PendingCopy>& copies);
  /// Adaptive Maps handling of one engine-managed (non-global) entry:
  /// consult the policy inside the table transaction, then realize the
  /// decision (DMA/prefault submitted outside the lock).
  void begin_one_adaptive(const MapEntry& entry, int device,
                          std::vector<PendingCopy>& copies);
  /// First pass of data-end: issue d2h copies.
  void end_copy_one(const MapEntry& entry, int device,
                    std::vector<PendingCopy>& copies);
  /// Second pass of data-end: decrement refcounts, free device storage.
  void end_release_one(const MapEntry& entry, int device);

  /// Degraded-mode mapping of one Copy-managed entry as zero-copy, used
  /// both as the reaction to a device-pool OOM (`reason` =
  /// OomFallbackZeroCopy, which also counts as a breaker trip) and as the
  /// open-breaker pinning path (`reason` = BreakerPinnedMap, which must NOT
  /// feed the breaker — pinned maps are the breaker's own output, and
  /// counting them would hold it open forever). With XNACK disabled the
  /// range is prefaulted into the GPU page table *before* the degraded
  /// entry becomes visible in the present table — another thread could
  /// dispatch a kernel on the range the moment it is published, and an
  /// untranslatable page would then be a fatal GpuMemoryFault.
  void fallback_map_zero_copy(const MapEntry& entry, int device,
                              trace::FaultEvent reason, bool counts_as_trip);

  /// `svm_attributes_set` with bounded exponential backoff (virtual time)
  /// against injected EINTR/EBUSY. On exhaustion: falls back to XNACK
  /// demand faulting when available, else throws
  /// OffloadError(PrefaultFailed).
  void prefault_with_retry(mem::AddrRange range, int device);

  /// Issue one async DMA copy and package it for the retry ladder.
  [[nodiscard]] PendingCopy submit_copy(mem::VirtAddr dst, mem::VirtAddr src,
                                        std::uint64_t bytes,
                                        mem::AddrRange host, bool with_handler,
                                        bool count_in_ledger, int device);

  /// Whether this entry's data is handled Copy-style (device copy + DMA):
  /// always under Legacy Copy; only globals under Implicit Z-C/Eager
  /// Maps/Adaptive Maps; never under USM.
  [[nodiscard]] bool copy_managed(const MapEntry& entry) const;
  /// Whether this entry's handling is chosen by the adapt policy engine
  /// (Adaptive Maps, non-global): present in the table means a live
  /// DmaCopy classification, absent means zero-copy semantics.
  [[nodiscard]] bool engine_managed(const MapEntry& entry) const;
  [[nodiscard]] bool is_global_addr(mem::VirtAddr a) const;

  /// Wait for a batch of copies; each errored copy is resubmitted (up to
  /// `DegradeParams::copy_max_retries` times) before the offending region
  /// fails with OffloadError(CopyFailed). A copy the watchdog aborted
  /// (sdma_stall) is replayed up to `DegradeParams::watchdog_max_replays`
  /// times before failing with OffloadError(OperationHung). Clears
  /// `copies`.
  void wait_all(std::vector<PendingCopy>& copies);

  /// Wait for a dispatched kernel's signal; if the watchdog aborted it,
  /// replay the dispatch up to `DegradeParams::watchdog_max_replays` times
  /// (recover mode) before raising OffloadError(OperationHung). In abort
  /// mode the first abort raises immediately. Shared by `target` and
  /// `target_wait`.
  void await_kernel(hsa::Signal sig, const hsa::KernelLaunch& launch,
                    int host_thread);

  /// One watchdog trip or degraded-mode event on `device`: feed the
  /// breaker, record its transitions, refresh the attention flag. Takes
  /// `table_mutex_`; also the watchdog fiber's trip listener.
  void note_breaker_trip(int device);

  /// Whether the breaker currently pins `device` to zero-copy + eager
  /// prefault. The common (closed) case is a lock-free flag read so the
  /// zero-copy hot path stays lock-free; only a non-closed breaker takes
  /// `table_mutex_` to apply due time-based transitions.
  [[nodiscard]] bool breaker_pinned(int device);
  /// Same, for callers already inside a `table_mutex_` transaction.
  [[nodiscard]] bool breaker_pinned_locked(int device);

  /// Record BreakerOpened/BreakerHalfOpened/BreakerClosed fault events for
  /// the transitions a breaker call returned. Call with `table_mutex_`
  /// held (the trace mutex nests inside it).
  void record_breaker_transitions(
      const std::vector<CircuitBreaker::Transition>& transitions, int device);

  hsa::Runtime& hsa_;
  ProgramBinary program_;
  RuntimeConfig config_;
  /// Serializes mapping-table transactions (lookup + allocate + insert, or
  /// lookup + refcount + copy-back decision, or decrement + free + erase)
  /// across host threads — the libomptarget per-process mapping lock.
  /// Zero-copy paths never take it. Declared before `tables_` so the guard
  /// exists when the guarded state is constructed.
  sim::Mutex table_mutex_;
  /// One PresentTable per device, guarded by `table_mutex_`: any access
  /// from inside a virtual thread without the lock is a checker error.
  sim::GuardedBy<std::vector<PresentTable>> tables_;
  /// Adaptive Maps policy engine and its decision trace share the mapping
  /// lock: decisions are part of the present-table transaction (classify,
  /// then insert — atomically), so a separate lock would only add a window
  /// where another thread maps the same range between the two.
  sim::GuardedBy<adapt::PolicyEngine> adapt_;
  sim::GuardedBy<trace::DecisionTrace> decisions_;
  /// Sticky per-device memory-pressure flags (char: vector<bool> has no
  /// addressable elements), set by the first pool-OOM fallback and fed to
  /// the Adaptive Maps cost model as a feature. Shares `table_mutex_`: the
  /// flag is read and written inside present-table transactions.
  sim::GuardedBy<std::vector<char>> pressure_;
  /// Per-device service-tenant occupancy ([0, 1], see
  /// `set_service_pressure`), fed to Adaptive Maps as
  /// `RegionFeatures::tenant_pressure`. Shares `table_mutex_` with the
  /// other policy features.
  sim::GuardedBy<std::vector<double>> service_pressure_;
  /// Per-device circuit breakers over watchdog trips and degraded-mode
  /// events; shares `table_mutex_` because open/closed state is consumed
  /// inside present-table transactions (and by the Adaptive Maps policy).
  sim::GuardedBy<std::vector<CircuitBreaker>> breakers_;
  /// Per-device "breaker not closed" flags, written only under
  /// `table_mutex_` but read without it by `breaker_pinned`: under
  /// cooperative scheduling a plain byte read is safe, and it keeps the
  /// zero-copy hot path lock-free when every breaker is closed (the
  /// steady state — `table_mutex_` stays a Copy-path-only lock).
  std::vector<char> breaker_attention_;
  bool image_load_started_ = false;
  bool image_loaded_ = false;
  sim::Latch image_latch_;  // set once the image is fully loaded
  std::unordered_set<int> initialized_threads_;
  int last_init_tid_ = -1;  // memo: skip the set probe for repeat callers
  std::unordered_map<std::string, mem::VirtAddr> global_host_;
  std::vector<mem::AddrRange> global_ranges_;
  std::vector<mem::VirtAddr> image_allocs_;
  check::Recorder* recorder_ = nullptr;
};

}  // namespace zc::omp
