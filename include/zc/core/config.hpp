#pragma once

#include <stdexcept>
#include <string>

#include "zc/apu/env.hpp"
#include "zc/apu/params.hpp"

namespace zc::omp {

/// The four runtime configurations the paper studies (§IV), plus the
/// simulator's own Adaptive Maps extension. All are equivalent from an
/// OpenMP semantics viewpoint; they differ in how the runtime realizes
/// data environments on the machine.
enum class RuntimeConfig {
  /// Map = device pool allocation + DMA copies (discrete-GPU behaviour,
  /// runs unchanged on the APU; copies become HBM-to-HBM).
  LegacyCopy,
  /// Program built with `#pragma omp requires unified_shared_memory`:
  /// maps are no-ops, kernels receive host pointers, globals are accessed
  /// through double indirection. Requires unified-memory (XNACK) support.
  UnifiedSharedMemory,
  /// Same zero-copy behaviour selected automatically by the runtime on an
  /// APU with XNACK enabled (or opted into on discrete GPUs with
  /// OMPX_APU_MAPS=1), for programs NOT built with the requires pragma.
  /// Globals keep the Copy behaviour (device copy + transfers on map).
  ImplicitZeroCopy,
  /// Implicit zero-copy plus a GPU page-table prefault on every map
  /// (`svm_attributes_set`), trading a host syscall per map for fault-free
  /// first-touch kernels. Does not require XNACK.
  EagerMaps,
  /// Online profile-guided handling (`OMPX_APU_MAPS=adaptive`): the
  /// `zc::adapt` policy engine classifies each mapped region as DMA-copy,
  /// XNACK zero-copy, or eager host prefault from observed behavior, with
  /// hysteresis and a per-range decision cache. Globals keep the Copy
  /// behaviour, like the other non-USM configurations.
  AdaptiveMaps,
};

[[nodiscard]] constexpr const char* to_string(RuntimeConfig c) {
  switch (c) {
    case RuntimeConfig::LegacyCopy:
      return "Legacy Copy";
    case RuntimeConfig::UnifiedSharedMemory:
      return "Unified Shared Memory";
    case RuntimeConfig::ImplicitZeroCopy:
      return "Implicit Zero-Copy";
    case RuntimeConfig::EagerMaps:
      return "Eager Maps";
    case RuntimeConfig::AdaptiveMaps:
      return "Adaptive Maps";
  }
  return "?";
}

/// True for the configurations that can pass host pointers to kernels
/// (Adaptive Maps does so for every region its policy keeps zero-copy).
[[nodiscard]] constexpr bool is_zero_copy(RuntimeConfig c) {
  return c != RuntimeConfig::LegacyCopy;
}

/// True for the configurations that keep separate device copies of
/// declare-target globals and transfer them on map (§IV-C: everything
/// except Unified Shared Memory's double indirection).
[[nodiscard]] constexpr bool globals_use_device_copy(RuntimeConfig c) {
  return c != RuntimeConfig::UnifiedSharedMemory;
}

/// Raised when the deployment environment cannot satisfy the program's
/// requirements (e.g. `requires unified_shared_memory` without XNACK).
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The automatic configuration-selection logic the paper contributes
/// (§IV-B/C/D, including footnote 1):
///
///  1. a program built with `requires unified_shared_memory` always runs as
///     Unified Shared Memory and demands XNACK — it cannot fall back;
///  2. otherwise, `OMPX_APU_MAPS=adaptive` on an APU selects Adaptive Maps
///     (works with XNACK on or off — the policy simply never chooses
///     zero-copy without XNACK);
///  3. otherwise, `OMPX_EAGER_ZERO_COPY_MAPS=1` on an APU selects Eager
///     Maps (works with XNACK on or off);
///  4. otherwise, an APU with XNACK enabled — or a discrete GPU with both
///     `OMPX_APU_MAPS` enabled (any non-off value) and XNACK — selects
///     Implicit Zero-Copy;
///  5. otherwise the runtime behaves as on discrete GPUs: Legacy Copy.
[[nodiscard]] RuntimeConfig resolve_config(apu::MachineKind kind,
                                           const apu::RunEnvironment& env,
                                           bool requires_usm);

}  // namespace zc::omp
