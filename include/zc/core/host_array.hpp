#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "zc/core/offload_runtime.hpp"

namespace zc::omp {

/// Typed host allocation bound to an OffloadRuntime — the moral equivalent
/// of `new T[n]` in an OpenMP program. Construction and `release()` are
/// timed (they model malloc/free on a virtual host thread and must run
/// inside one); the destructor only reclaims simulator state.
template <typename T>
class HostArray {
 public:
  HostArray(OffloadRuntime& rt, std::size_t count, std::string name,
            int home_socket = 0)
      : rt_{&rt},
        count_{count},
        addr_{rt.host_alloc(count * sizeof(T), std::move(name), home_socket)} {}

  HostArray(const HostArray&) = delete;
  HostArray& operator=(const HostArray&) = delete;
  HostArray(HostArray&& o) noexcept
      : rt_{o.rt_}, count_{o.count_}, addr_{std::exchange(o.addr_, {})} {}
  HostArray& operator=(HostArray&& o) noexcept {
    if (this != &o) {
      reclaim();
      rt_ = o.rt_;
      count_ = o.count_;
      addr_ = std::exchange(o.addr_, {});
    }
    return *this;
  }

  ~HostArray() { reclaim(); }

  /// Timed free (must run on a virtual thread).
  void release() {
    if (!addr_.is_null()) {
      rt_->host_free(std::exchange(addr_, {}));
    }
  }

  [[nodiscard]] mem::VirtAddr addr() const { return addr_; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t bytes() const { return count_ * sizeof(T); }
  [[nodiscard]] mem::AddrRange range() const {
    return mem::AddrRange{addr_, bytes()};
  }

  /// Real backing pointer (host view).
  [[nodiscard]] T* data() {
    return rt_->hsa().memory().space().translate_as<T>(addr_);
  }
  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }

  /// Timed CPU first touch of the whole array.
  void first_touch() { rt_->host_first_touch(range()); }

  /// Map-clause builders.
  [[nodiscard]] MapEntry to() const { return MapEntry::to(addr_, bytes()); }
  [[nodiscard]] MapEntry from() const {
    return MapEntry::from(addr_, bytes());
  }
  [[nodiscard]] MapEntry tofrom() const {
    return MapEntry::tofrom(addr_, bytes());
  }
  [[nodiscard]] MapEntry alloc() const {
    return MapEntry::alloc(addr_, bytes());
  }
  [[nodiscard]] MapEntry always_to() const {
    return MapEntry::always_to(addr_, bytes());
  }
  [[nodiscard]] MapEntry always_tofrom() const {
    return MapEntry::always_tofrom(addr_, bytes());
  }

 private:
  void reclaim() {
    if (!addr_.is_null()) {
      // Untimed state reclamation (destructor may run outside any fiber).
      rt_->hsa().memory().os_free(std::exchange(addr_, {}));
    }
  }

  OffloadRuntime* rt_;
  std::size_t count_ = 0;
  mem::VirtAddr addr_;
};

}  // namespace zc::omp
