#pragma once

#include <cstdint>

#include "zc/apu/machine.hpp"
#include "zc/sim/time.hpp"

namespace zc::omp {

/// Modeled GPU-resident compute time of a memory-bound kernel that streams
/// `bytes` through HBM (reads + writes combined).
[[nodiscard]] inline sim::Duration stream_kernel_cost(
    const apu::Machine& machine, std::uint64_t bytes) {
  return sim::Duration::from_seconds(
      static_cast<double>(bytes) /
      machine.costs().gpu_stream_bandwidth_bytes_per_s);
}

/// Compute time for a kernel that streams `bytes` and additionally performs
/// `intensity` units of arithmetic per byte (a crude roofline knob: 1.0
/// doubles the streaming time).
[[nodiscard]] inline sim::Duration roofline_kernel_cost(
    const apu::Machine& machine, std::uint64_t bytes, double intensity) {
  return stream_kernel_cost(machine, bytes) * (1.0 + intensity);
}

}  // namespace zc::omp
