#pragma once

#include <cstdint>
#include <memory>

#include "zc/apu/machine.hpp"
#include "zc/core/offload_error.hpp"
#include "zc/core/offload_runtime.hpp"
#include "zc/core/program.hpp"
#include "zc/hsa/runtime.hpp"
#include "zc/mem/memory_system.hpp"
#include "zc/race/detector.hpp"

namespace zc::omp {

/// The full simulated software stack for one application run:
/// machine -> memory system -> HSA runtime -> OpenMP offload runtime.
///
/// Non-copyable and non-movable (the layers hold references to each other);
/// construct one per run.
class OffloadStack {
 public:
  OffloadStack(apu::Machine::Config machine_config, ProgramBinary program)
      : machine_{std::move(machine_config)},
        race_{race::make_detector(machine_)},
        memory_{machine_},
        hsa_{machine_, memory_},
        omp_{hsa_, std::move(program)} {
    if (race_ != nullptr && race_->mode() == race::Detector::Mode::Abort) {
      // Abort mode surfaces the first race through the runtime's own error
      // taxonomy so callers dispatch on it like any other offload failure.
      race_->set_abort_handler([](const trace::RaceReport& r) {
        throw OffloadError(ErrorCode::DataRace, r.message);
      });
    }
  }

  OffloadStack(const OffloadStack&) = delete;
  OffloadStack& operator=(const OffloadStack&) = delete;

  /// Build a stack whose environment makes `resolve_config` pick `config`
  /// on an MI300A machine:
  ///  * Legacy Copy           — HSA_XNACK=0
  ///  * Unified Shared Memory — HSA_XNACK=1 and a USM-built binary
  ///  * Implicit Zero-Copy    — HSA_XNACK=1
  ///  * Eager Maps            — OMPX_EAGER_ZERO_COPY_MAPS=1 (XNACK on)
  [[nodiscard]] static apu::Machine::Config machine_config_for(
      RuntimeConfig config, sim::JitterParams jitter = {},
      std::uint64_t seed = 1);

  /// Adjust `program.requires_unified_shared_memory` to match `config`.
  [[nodiscard]] static ProgramBinary program_for(RuntimeConfig config,
                                                 ProgramBinary program);

  [[nodiscard]] apu::Machine& machine() { return machine_; }
  [[nodiscard]] mem::MemorySystem& memory() { return memory_; }
  [[nodiscard]] hsa::Runtime& hsa() { return hsa_; }
  [[nodiscard]] OffloadRuntime& omp() { return omp_; }
  [[nodiscard]] sim::Scheduler& sched() { return machine_.sched(); }

  /// The happens-before race detector, or null when
  /// `OMPX_APU_RACE_CHECK=off` (the default).
  [[nodiscard]] race::Detector* race_detector() { return race_.get(); }
  [[nodiscard]] const race::Detector* race_detector() const {
    return race_.get();
  }

 private:
  apu::Machine machine_;
  /// Constructed (and attached to the scheduler) before any other layer so
  /// every sync edge and instrumented access is observed from time zero;
  /// destroyed last among the layers that emit into it.
  std::unique_ptr<race::Detector> race_;
  mem::MemorySystem memory_;
  hsa::Runtime hsa_;
  OffloadRuntime omp_;
};

}  // namespace zc::omp
