#pragma once

#include <cstdint>

#include "zc/apu/machine.hpp"
#include "zc/core/offload_runtime.hpp"
#include "zc/core/program.hpp"
#include "zc/hsa/runtime.hpp"
#include "zc/mem/memory_system.hpp"

namespace zc::omp {

/// The full simulated software stack for one application run:
/// machine -> memory system -> HSA runtime -> OpenMP offload runtime.
///
/// Non-copyable and non-movable (the layers hold references to each other);
/// construct one per run.
class OffloadStack {
 public:
  OffloadStack(apu::Machine::Config machine_config, ProgramBinary program)
      : machine_{std::move(machine_config)},
        memory_{machine_},
        hsa_{machine_, memory_},
        omp_{hsa_, std::move(program)} {}

  OffloadStack(const OffloadStack&) = delete;
  OffloadStack& operator=(const OffloadStack&) = delete;

  /// Build a stack whose environment makes `resolve_config` pick `config`
  /// on an MI300A machine:
  ///  * Legacy Copy           — HSA_XNACK=0
  ///  * Unified Shared Memory — HSA_XNACK=1 and a USM-built binary
  ///  * Implicit Zero-Copy    — HSA_XNACK=1
  ///  * Eager Maps            — OMPX_EAGER_ZERO_COPY_MAPS=1 (XNACK on)
  [[nodiscard]] static apu::Machine::Config machine_config_for(
      RuntimeConfig config, sim::JitterParams jitter = {},
      std::uint64_t seed = 1);

  /// Adjust `program.requires_unified_shared_memory` to match `config`.
  [[nodiscard]] static ProgramBinary program_for(RuntimeConfig config,
                                                 ProgramBinary program);

  [[nodiscard]] apu::Machine& machine() { return machine_; }
  [[nodiscard]] mem::MemorySystem& memory() { return memory_; }
  [[nodiscard]] hsa::Runtime& hsa() { return hsa_; }
  [[nodiscard]] OffloadRuntime& omp() { return omp_; }
  [[nodiscard]] sim::Scheduler& sched() { return machine_.sched(); }

 private:
  apu::Machine machine_;
  mem::MemorySystem memory_;
  hsa::Runtime hsa_;
  OffloadRuntime omp_;
};

}  // namespace zc::omp
