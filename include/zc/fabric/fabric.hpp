#pragma once

#include <cstdint>
#include <vector>

#include "zc/sim/time.hpp"
#include "zc/sim/timeline.hpp"

namespace zc::fabric {

/// How inter-socket traffic is priced.
///
///  * `Off`     — single-link legacy model: the flat
///                `remote_copy_bandwidth_factor` / `remote_memory_penalty`
///                scalars in `apu::CostParams` apply and no link contention
///                is accounted (the pre-fabric behavior, and the default).
///  * `Uniform` — every socket pair is joined by an identical wide link;
///                contention is accounted per directed link.
///  * `Xgmi`    — the MI300A 4-APU node: socket pairs whose ids differ in
///                exactly one bit share a wide xGMI bundle, the diagonal
///                pairs only a narrow one ("Inter-APU Communication on AMD
///                MI300A Systems via Infinity Fabric").
enum class FabricMode {
  Off,
  Uniform,
  Xgmi,
};

[[nodiscard]] constexpr const char* to_string(FabricMode m) {
  switch (m) {
    case FabricMode::Off:
      return "off";
    case FabricMode::Uniform:
      return "uniform";
    case FabricMode::Xgmi:
      return "xgmi";
  }
  return "?";
}

/// Per-link physical parameters of one directed link.
struct LinkParams {
  double bandwidth_bytes_per_s = 0.0;
  sim::Duration latency = sim::Duration::zero();
};

/// Node-level fabric parameters. The bandwidth defaults deliberately sit
/// below the local SDMA copy bandwidth (24 GB/s in `apu::CostParams`): a
/// wide link at 13.2 GB/s reproduces the legacy 0.55 remote-copy factor,
/// and the narrow diagonal at 6 GB/s supplies the asymmetry the Inter-APU
/// paper measures between direct and diagonal socket pairs.
struct FabricConfig {
  FabricMode mode = FabricMode::Off;
  double wide_bandwidth_bytes_per_s = 13.2e9;
  double narrow_bandwidth_bytes_per_s = 6.0e9;
  sim::Duration link_latency = sim::Duration::from_us(1.5);
  /// Concurrent transfers one directed link sustains before queuing.
  int channels_per_link = 1;
};

/// Cumulative accounting for one directed link.
struct LinkStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  sim::Duration busy = sim::Duration::zero();
  sim::Duration queued = sim::Duration::zero();
};

/// The modeled Infinity Fabric of one node: a complete graph over sockets
/// where each directed link is a FIFO `sim::ResourceTimeline` carrying its
/// own bandwidth/latency parameters. Pure topology + contention state — it
/// never advances virtual time itself; the HSA layer computes (and jitters)
/// durations, reserves link occupancy here, and advances its own fibers.
class Fabric {
 public:
  Fabric(int sockets, FabricConfig config);

  /// True when inter-socket traffic is link-routed (mode != Off and the
  /// node actually has more than one socket).
  [[nodiscard]] bool enabled() const {
    return config_.mode != FabricMode::Off && sockets_ > 1;
  }
  [[nodiscard]] int sockets() const { return sockets_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// Whether `src`/`dst` share a wide link (ids differing in exactly one
  /// bit — the hypercube rule that yields the 4-APU wide/narrow split).
  /// Uniform mode makes every pair wide. `src == dst` is never remote.
  [[nodiscard]] bool wide_link(int src, int dst) const;

  /// Physical parameters of the directed link; zero-bandwidth for local
  /// (src == dst) or disabled fabrics.
  [[nodiscard]] LinkParams link(int src, int dst) const;

  /// Latency plus serialization time of `bytes` over the directed link.
  /// Zero for local transfers or a disabled fabric.
  [[nodiscard]] sim::Duration transfer_duration(int src, int dst,
                                                std::uint64_t bytes) const;

  /// Occupy the directed link for `dur` starting no earlier than `ready`
  /// (FIFO queuing behind in-flight transfers) and account `bytes` against
  /// it. For local transfers or a disabled fabric this is a no-op that
  /// returns the empty interval [ready, ready].
  sim::Interval reserve_transfer(int src, int dst, sim::TimePoint ready,
                                 sim::Duration dur, std::uint64_t bytes);

  /// Cumulative accounting for one directed link (zeros when local/off).
  [[nodiscard]] LinkStats stats(int src, int dst) const;

  /// Total transfers routed over any link since construction.
  [[nodiscard]] std::uint64_t total_transfers() const;

  /// Forget all reservations and statistics (topology retained).
  void reset();

 private:
  [[nodiscard]] std::size_t index(int src, int dst) const;
  void check_pair(int src, int dst) const;

  int sockets_;
  FabricConfig config_;
  std::vector<sim::ResourceTimeline> links_;  ///< dense sockets×sockets
  std::vector<std::uint64_t> transfers_;
  std::vector<std::uint64_t> bytes_;
};

}  // namespace zc::fabric
