#include "zc/trace/call_stats.hpp"

#include <ostream>

namespace zc::trace {

const char* to_string(HsaCall c) {
  switch (c) {
    case HsaCall::SignalCreate:
      return "hsa_signal_create";
    case HsaCall::SignalWaitScacquire:
      return "hsa_signal_wait_scacquire";
    case HsaCall::SignalAsyncHandler:
      return "hsa_amd_signal_async_handler";
    case HsaCall::MemoryPoolAllocate:
      return "hsa_amd_memory_pool_allocate";
    case HsaCall::MemoryPoolFree:
      return "hsa_amd_memory_pool_free";
    case HsaCall::MemoryAsyncCopy:
      return "hsa_amd_memory_async_copy";
    case HsaCall::QueueDispatch:
      return "hsa_queue_dispatch";
    case HsaCall::SvmAttributesSet:
      return "hsa_amd_svm_attributes_set";
    case HsaCall::kCount:
      break;
  }
  return "?";
}

void CallStats::record(HsaCall call, sim::Duration latency) {
  Entry& e = entries_[index(call)];
  ++e.count;
  e.latency += latency;
}

std::uint64_t CallStats::total_calls() const {
  std::uint64_t n = 0;
  for (const Entry& e : entries_) {
    n += e.count;
  }
  return n;
}

sim::Duration CallStats::total_time() const {
  sim::Duration d;
  for (const Entry& e : entries_) {
    d += e.latency;
  }
  return d;
}

void CallStats::reset() { entries_.fill(Entry{}); }

void CallStats::merge(const CallStats& other) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].count += other.entries_[i].count;
    entries_[i].latency += other.entries_[i].latency;
  }
}

void CallStats::write_csv(std::ostream& os) const {
  os << "call,count,total_us\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.count == 0) {
      continue;
    }
    os << to_string(static_cast<HsaCall>(i)) << ',' << e.count << ','
       << e.latency.us() << '\n';
  }
}

}  // namespace zc::trace
