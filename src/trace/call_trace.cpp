#include "zc/trace/call_trace.hpp"

#include <ostream>

namespace zc::trace {

std::vector<CallRecord> CallTrace::by_call(HsaCall call) const {
  std::vector<CallRecord> out;
  for (const CallRecord& r : records_) {
    if (r.call == call) {
      out.push_back(r);
    }
  }
  return out;
}

sim::Duration CallTrace::latency_in_window(sim::TimePoint from,
                                           sim::TimePoint to) const {
  sim::Duration total;
  for (const CallRecord& r : records_) {
    if (r.start >= from && r.start < to) {
      total += r.latency;
    }
  }
  return total;
}

void CallTrace::write_csv(std::ostream& os) const {
  os << "start_us,call,thread,latency_us\n";
  for (const CallRecord& r : records_) {
    os << r.start.since_start().us() << ',' << to_string(r.call) << ','
       << r.host_thread << ',' << r.latency.us() << '\n';
  }
}

}  // namespace zc::trace
