#include "zc/trace/chrome_trace.hpp"

#include <ostream>

namespace zc::trace {

namespace {

/// Trace-event names must be JSON-safe; ours are identifiers already, but
/// escape defensively.
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
}

}  // namespace

void ChromeTraceWriter::add(const CallTrace& calls) {
  call_events_.insert(call_events_.end(), calls.records().begin(),
                      calls.records().end());
}

void ChromeTraceWriter::add(const std::vector<KernelRecord>& kernels) {
  kernel_events_.insert(kernel_events_.end(), kernels.begin(), kernels.end());
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ',';
    }
    first = false;
  };
  for (const CallRecord& r : call_events_) {
    sep();
    os << "{\"name\":\"" << to_string(r.call)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << r.host_thread
       << ",\"ts\":" << r.start.since_start().us()
       << ",\"dur\":" << r.latency.us() << ",\"cat\":\"hsa\"}";
  }
  for (const KernelRecord& k : kernel_events_) {
    sep();
    os << "{\"name\":\"";
    write_escaped(os, k.name);
    os << "\",\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":"
       << k.start.since_start().us() << ",\"dur\":" << k.duration().us()
       << ",\"cat\":\"kernel\",\"args\":{\"host_thread\":" << k.host_thread
       << ",\"page_faults\":" << k.page_faults
       << ",\"fault_stall_us\":" << k.fault_stall.us()
       << ",\"tlb_stall_us\":" << k.tlb_stall.us() << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\","
        "\"otherData\":{\"generator\":\"apuzc simulator\"}}";
}

}  // namespace zc::trace
