#include "zc/trace/chrome_trace.hpp"

#include <ostream>

namespace zc::trace {

namespace {

/// Trace-event names must be JSON-safe; ours are identifiers already, but
/// escape defensively.
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
}

}  // namespace

void ChromeTraceWriter::add(const CallTrace& calls) {
  call_events_.insert(call_events_.end(), calls.records().begin(),
                      calls.records().end());
}

void ChromeTraceWriter::add(const std::vector<KernelRecord>& kernels) {
  kernel_events_.insert(kernel_events_.end(), kernels.begin(), kernels.end());
}

void ChromeTraceWriter::add(const std::vector<CopyRecord>& copies) {
  copy_events_.insert(copy_events_.end(), copies.begin(), copies.end());
}

void ChromeTraceWriter::add(const FaultTrace& faults) {
  fault_events_.insert(fault_events_.end(), faults.records().begin(),
                       faults.records().end());
}

void ChromeTraceWriter::add(const DecisionTrace& decisions) {
  decision_events_.insert(decision_events_.end(), decisions.records().begin(),
                          decisions.records().end());
}

void ChromeTraceWriter::add(const std::vector<ServiceJobRecord>& jobs) {
  service_events_.insert(service_events_.end(), jobs.begin(), jobs.end());
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ',';
    }
    first = false;
  };
  // Lane labels: one process per hardware class, one thread per device
  // within it, so multi-device events never share a track. Omitted from an
  // empty document, which stays the bare JSON shell.
  if (event_count() > 0) {
    static constexpr struct {
      int pid;
      const char* name;
    } kLanes[] = {
        {1, "host"}, {2, "gpu"}, {3, "sdma"}, {4, "faults"}, {5, "service"}};
    for (const auto& lane : kLanes) {
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << lane.pid
         << ",\"args\":{\"name\":\"" << lane.name << "\"}}";
    }
  }
  for (const CallRecord& r : call_events_) {
    sep();
    os << "{\"name\":\"" << to_string(r.call)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << r.host_thread
       << ",\"ts\":" << r.start.since_start().us()
       << ",\"dur\":" << r.latency.us() << ",\"cat\":\"hsa\"}";
  }
  for (const KernelRecord& k : kernel_events_) {
    sep();
    os << "{\"name\":\"";
    write_escaped(os, k.name);
    os << "\",\"ph\":\"X\",\"pid\":2,\"tid\":" << k.device
       << ",\"ts\":" << k.start.since_start().us()
       << ",\"dur\":" << k.duration().us()
       << ",\"cat\":\"kernel\",\"args\":{\"host_thread\":" << k.host_thread
       << ",\"page_faults\":" << k.page_faults
       << ",\"fault_stall_us\":" << k.fault_stall.us()
       << ",\"tlb_stall_us\":" << k.tlb_stall.us()
       << ",\"remote_bytes\":" << k.remote_bytes << "}}";
  }
  for (const CopyRecord& c : copy_events_) {
    sep();
    os << "{\"name\":\"sdma-copy\",\"ph\":\"X\",\"pid\":3,\"tid\":"
       << c.device << ",\"ts\":" << c.start.since_start().us()
       << ",\"dur\":" << c.duration().us()
       << ",\"cat\":\"sdma\",\"args\":{\"bytes\":" << c.bytes
       << ",\"src_socket\":" << c.src_socket
       << ",\"dst_socket\":" << c.dst_socket << ",\"cross_socket\":"
       << (c.cross_socket() ? "true" : "false") << "}}";
  }
  for (const FaultRecord& f : fault_events_) {
    sep();
    os << "{\"name\":\"" << to_string(f.event)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":4,\"tid\":" << f.device
       << ",\"ts\":" << f.time.since_start().us()
       << ",\"cat\":\"fault\",\"args\":{\"host_base\":" << f.host_base
       << ",\"bytes\":" << f.bytes << ",\"attempt\":" << f.attempt << "}}";
  }
  for (const DecisionRecord& d : decision_events_) {
    sep();
    os << "{\"name\":\"adapt:" << to_string(d.decision)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << d.host_thread
       << ",\"ts\":" << d.time.since_start().us()
       << ",\"cat\":\"adapt\",\"args\":{\"device\":" << d.device
       << ",\"host_base\":" << d.host_base << ",\"bytes\":" << d.bytes
       << ",\"pages\":" << d.pages
       << ",\"cpu_resident_pages\":" << d.cpu_resident_pages
       << ",\"gpu_absent_pages\":" << d.gpu_absent_pages
       << ",\"predicted_copy_us\":" << d.predicted_copy_us
       << ",\"predicted_zero_copy_us\":" << d.predicted_zero_copy_us
       << ",\"predicted_eager_us\":" << d.predicted_eager_us
       << ",\"revised\":" << (d.revised ? "true" : "false") << "}}";
  }
  for (const ServiceJobRecord& j : service_events_) {
    sep();
    if (j.outcome == ServiceJobOutcome::Shed) {
      os << "{\"name\":\"job-shed\",\"ph\":\"i\",\"s\":\"t\",\"pid\":5,"
            "\"tid\":"
         << j.tenant << ",\"ts\":" << j.arrival.since_start().us()
         << ",\"cat\":\"service\",\"args\":{\"job\":" << j.job
         << ",\"pages\":" << j.pages << "}}";
      continue;
    }
    os << "{\"name\":\"job\",\"ph\":\"X\",\"pid\":5,\"tid\":" << j.tenant
       << ",\"ts\":" << j.arrival.since_start().us()
       << ",\"dur\":" << j.sojourn().us()
       << ",\"cat\":\"service\",\"args\":{\"job\":" << j.job
       << ",\"device\":" << j.device << ",\"pages\":" << j.pages
       << ",\"queue_wait_us\":" << j.queue_wait().us() << ",\"outcome\":\""
       << to_string(j.outcome) << "\"}}";
  }
  os << "],\"displayTimeUnit\":\"ms\","
        "\"otherData\":{\"generator\":\"apuzc simulator\"}}";
}

}  // namespace zc::trace
