#include "zc/trace/kernel_trace.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

namespace zc::trace {

void KernelTrace::record(KernelRecord rec) {
  ++summary_.launches;
  summary_.total_time += rec.duration();
  summary_.total_compute += rec.compute;
  summary_.total_fault_stall += rec.fault_stall;
  summary_.total_tlb_stall += rec.tlb_stall;
  summary_.total_page_faults += rec.page_faults;
  if (keep_records_) {
    records_.push_back(std::move(rec));
  }
}

KernelTraceSummary KernelTrace::summarize_first(std::uint64_t n) const {
  KernelTraceSummary s;
  const std::uint64_t limit = std::min<std::uint64_t>(n, records_.size());
  for (std::uint64_t i = 0; i < limit; ++i) {
    const KernelRecord& r = records_[i];
    ++s.launches;
    s.total_time += r.duration();
    s.total_compute += r.compute;
    s.total_fault_stall += r.fault_stall;
    s.total_tlb_stall += r.tlb_stall;
    s.total_page_faults += r.page_faults;
  }
  return s;
}

void KernelTrace::reset() {
  records_.clear();
  summary_ = KernelTraceSummary{};
}

void KernelTrace::write_csv(std::ostream& os) const {
  os << "name,thread,start_us,dur_us,compute_us,fault_us,tlb_us,faults\n";
  for (const KernelRecord& r : records_) {
    os << r.name << ',' << r.host_thread << ','
       << r.start.since_start().us() << ',' << r.duration().us() << ','
       << r.compute.us() << ',' << r.fault_stall.us() << ','
       << r.tlb_stall.us() << ',' << r.page_faults << '\n';
  }
}

void KernelTrace::dump(std::ostream& os) const {
  for (const KernelRecord& r : records_) {
    os << r.name << " thread=" << r.host_thread << " start="
       << r.start.to_string() << " dur=" << r.duration().to_string()
       << " faults=" << r.page_faults << " fault_stall="
       << r.fault_stall.to_string() << " tlb_misses=" << r.tlb_misses << '\n';
  }
}

}  // namespace zc::trace
