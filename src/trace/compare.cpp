#include "zc/trace/compare.hpp"

namespace zc::trace {

std::vector<CallComparison> compare_calls(const CallStats& baseline,
                                          const CallStats& other,
                                          const std::vector<HsaCall>& calls) {
  std::vector<CallComparison> out;
  out.reserve(calls.size());
  for (const HsaCall call : calls) {
    out.push_back(CallComparison{
        .call = call,
        .baseline_calls = baseline.count(call),
        .other_calls = other.count(call),
        .baseline_latency = baseline.total_latency(call),
        .other_latency = other.total_latency(call),
    });
  }
  return out;
}

std::vector<HsaCall> table_one_calls() {
  return {HsaCall::SignalWaitScacquire, HsaCall::MemoryPoolAllocate,
          HsaCall::MemoryAsyncCopy, HsaCall::SignalAsyncHandler};
}

}  // namespace zc::trace
