#include "zc/trace/overhead_ledger.hpp"

#include <cmath>

namespace zc::trace {

const char* order_of_magnitude_us(sim::Duration d) {
  const double us = d.us();
  if (us < 1.0) {
    return "O(0)";
  }
  const int k = static_cast<int>(std::floor(std::log10(us)));
  switch (k) {
    case 0:
      return "O(10^0)";
    case 1:
      return "O(10^1)";
    case 2:
      return "O(10^2)";
    case 3:
      return "O(10^3)";
    case 4:
      return "O(10^4)";
    case 5:
      return "O(10^5)";
    case 6:
      return "O(10^6)";
    case 7:
      return "O(10^7)";
    default:
      return k < 0 ? "O(0)" : "O(>=10^8)";
  }
}

}  // namespace zc::trace
