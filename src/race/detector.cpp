#include "zc/race/detector.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "zc/apu/machine.hpp"
#include "zc/sim/scheduler.hpp"

namespace zc::race {

Detector::Detector(Mode mode, std::uint64_t page_bytes)
    : mode_{mode}, page_bytes_{page_bytes} {}

Detector::~Detector() { detach(); }

void Detector::attach(sim::Scheduler& sched) {
  sched_ = &sched;
  sched.set_hooks(this);
}

void Detector::detach() {
  if (sched_ != nullptr && sched_->hooks() == this) {
    sched_->set_hooks(nullptr);
  }
  sched_ = nullptr;
}

int Detector::self_slot() {
  if (sched_ == nullptr || !sched_->in_thread()) {
    return -1;
  }
  return slot_for_thread(sched_->current().id());
}

int Detector::slot_for_thread(int thread_id) {
  const auto it = thread_slot_.find(thread_id);
  if (it != thread_slot_.end()) {
    return it->second;
  }
  // First sighting (the detector was attached after this thread spawned):
  // order it after every drained predecessor, like an outside spawn.
  const int slot = static_cast<int>(actors_.size());
  Actor a;
  a.clock = drain_;
  a.clock.set(slot, 1);
  a.name = sched_->thread(static_cast<std::size_t>(thread_id)).name();
  actors_.push_back(std::move(a));
  thread_slot_.emplace(thread_id, slot);
  return slot;
}

Detector::Actor& Detector::mutate(int slot) {
  Actor& a = actors_[static_cast<std::size_t>(slot)];
  a.snap.reset();
  return a;
}

std::shared_ptr<const VectorClock> Detector::snapshot(int slot) {
  Actor& a = actors_[static_cast<std::size_t>(slot)];
  if (!a.snap) {
    a.snap = std::make_shared<const VectorClock>(a.clock);
  }
  return a.snap;
}

void Detector::on_spawn(int parent_id, int child_id) {
  // Resolve the parent first: a first sighting appends its actor, so the
  // child's slot must be taken from the vector size *after* that.
  const int pslot = parent_id >= 0 ? slot_for_thread(parent_id) : -1;
  const int slot = static_cast<int>(actors_.size());
  Actor a;
  if (pslot >= 0) {
    // Fork edge: the child starts at the parent's frontier, and the
    // parent's subsequent work is not ordered before the child's.
    a.clock = actors_[static_cast<std::size_t>(pslot)].clock;
    mutate(pslot).clock.tick(pslot);
  } else {
    // Spawned outside any virtual thread (before run(), or a later run()
    // round): ordered after every thread that already finished.
    a.clock = drain_;
  }
  a.clock.set(slot, 1);
  a.name = sched_->thread(static_cast<std::size_t>(child_id)).name();
  actors_.push_back(std::move(a));
  thread_slot_[child_id] = slot;
}

void Detector::on_finish(int thread_id) {
  const int slot = slot_for_thread(thread_id);
  Actor& a = actors_[static_cast<std::size_t>(slot)];
  drain_.join(a.clock);
  a.done = true;
}

void Detector::on_release(const void* obj, sim::SyncKind /*kind*/) {
  const int slot = self_slot();
  if (slot < 0) {
    return;
  }
  sync_[obj].join(actors_[static_cast<std::size_t>(slot)].clock);
  mutate(slot).clock.tick(slot);
}

void Detector::on_acquire(const void* obj, sim::SyncKind /*kind*/) {
  const int slot = self_slot();
  if (slot < 0) {
    return;
  }
  const auto it = sync_.find(obj);
  if (it != sync_.end()) {
    mutate(slot).clock.join(it->second);
  }
}

void Detector::on_access(const void* addr, std::size_t /*bytes*/,
                         std::string_view what, bool is_write) {
  const int slot = self_slot();
  if (slot < 0) {
    return;
  }
  Shadow& sh = vars_[addr];
  check(sh, trace::RaceKind::Field, [&] { return std::string{what}; }, slot,
        is_write, what);
}

int Detector::on_task_begin(std::string_view what, int device) {
  const int slot = self_slot();
  if (slot < 0) {
    return -1;
  }
  const std::string name = std::string{what} + "@dev" + std::to_string(device);
  // Sequential-dispatch fast path: if this thread's previous task has ended
  // and the thread has synchronized with it (its clock covers the task's
  // epoch — it waited on the completion signal), the previous task happened-
  // before this one, and the slot can be reused at value+1: any accessor
  // covering the new epoch is ordered after the new task, hence after every
  // older task on the slot too. A previous task still in flight (nowait
  // chain) is unordered with this one and keeps its slot.
  if (const auto it = thread_task_slot_.find(slot);
      it != thread_task_slot_.end()) {
    const int ts = it->second;
    Actor& t = actors_[static_cast<std::size_t>(ts)];
    const std::uint64_t v = t.clock.of(ts);
    if (t.done &&
        actors_[static_cast<std::size_t>(slot)].clock.of(ts) >= v) {
      t.clock = actors_[static_cast<std::size_t>(slot)].clock;
      t.clock.set(ts, v + 1);
      t.name = name;
      t.done = false;
      t.snap.reset();
      retired_.erase(ts);
      mutate(slot).clock.tick(slot);
      return ts;
    }
  }
  const int task = static_cast<int>(actors_.size());
  Actor a;
  a.clock = actors_[static_cast<std::size_t>(slot)].clock;
  a.clock.set(task, 1);
  a.name = name;
  a.is_task = true;
  actors_.push_back(std::move(a));
  mutate(slot).clock.tick(slot);
  thread_task_slot_[slot] = task;
  return task;
}

void Detector::on_task_acquire(int task, const void* obj) {
  if (task < 0 || task >= static_cast<int>(actors_.size())) {
    return;
  }
  const auto it = sync_.find(obj);
  if (it != sync_.end()) {
    mutate(task).clock.join(it->second);
  }
}

void Detector::on_task_pages(int task, std::uint64_t first_page,
                             std::uint64_t pages, bool is_write,
                             std::string_view what) {
  if (task < 0 || task >= static_cast<int>(actors_.size())) {
    return;
  }
  if (prune_ != nullptr && prune_->covers_range(first_page, first_page + pages)) {
    pruned_stamps_ += pages;  // whole access statically proven safe
    return;
  }
  for (std::uint64_t p = first_page; p < first_page + pages; ++p) {
    if (prune_ != nullptr && prune_->covers(p)) {
      ++pruned_stamps_;  // statically proven safe: skip the shadow stamp
      continue;
    }
    ++checked_stamps_;
    check(pages_[p], trace::RaceKind::Page, [&] { return page_name(p); },
          task, is_write, what);
  }
}

void Detector::on_host_pages(std::uint64_t first_page, std::uint64_t pages,
                             bool is_write, std::string_view what) {
  const int slot = self_slot();
  if (slot < 0) {
    return;
  }
  if (prune_ != nullptr && prune_->covers_range(first_page, first_page + pages)) {
    pruned_stamps_ += pages;
    return;
  }
  for (std::uint64_t p = first_page; p < first_page + pages; ++p) {
    if (prune_ != nullptr && prune_->covers(p)) {
      ++pruned_stamps_;
      continue;
    }
    ++checked_stamps_;
    check(pages_[p], trace::RaceKind::Page, [&] { return page_name(p); },
          slot, is_write, what);
  }
}

void Detector::on_task_end(int task, const void* completion_obj) {
  if (task < 0 || task >= static_cast<int>(actors_.size())) {
    return;
  }
  Actor& a = actors_[static_cast<std::size_t>(task)];
  sync_[completion_obj].join(a.clock);
  a.done = true;
  retired_.insert(task);
  if (++ends_since_compact_ >= kCompactEvery) {
    compact();
  }
}

void Detector::compact() {
  ends_since_compact_ = 0;
  // Pass 1 — discard *ancient* shadow entries. An access covered by the
  // drain frontier and by every unfinished actor's clock is ordered before
  // everything that can still run — and every future actor forks from one
  // of those clocks (or from drain_), so coverage is inherited. Such an
  // access can never be the older half of a race report again; dropping it
  // releases its clock snapshot and, often, the last reference to a
  // retired task's slot. Poisoned shadows report nothing further either
  // way, so their retained accesses are dropped unconditionally.
  std::vector<const VectorClock*> actable;
  for (const Actor& a : actors_) {
    if (!a.done) {
      actable.push_back(&a.clock);
    }
  }
  const auto ancient = [&](const Epoch e) {
    if (!drain_.covers(e)) {
      return false;
    }
    for (const VectorClock* c : actable) {
      if (!c->covers(e)) {
        return false;
      }
    }
    return true;
  };
  const auto sweep = [&](Shadow& sh) {
    if (sh.poisoned) {
      sh.write = Access{};
      sh.reads.clear();
      return;
    }
    if (sh.write.epoch.valid() && ancient(sh.write.epoch)) {
      sh.write = Access{};
    }
    std::erase_if(sh.reads,
                  [&](const Access& r) { return ancient(r.epoch); });
  };
  for (auto& [addr, sh] : vars_) {
    sweep(sh);
  }
  for (auto& [page, sh] : pages_) {
    sweep(sh);
  }
  // A fully swept shadow is indistinguishable from an absent one — unless
  // it is poisoned, which must persist to keep suppressing reports.
  const auto hollow = [](const auto& kv) {
    return !kv.second.poisoned && !kv.second.write.epoch.valid() &&
           kv.second.reads.empty();
  };
  std::erase_if(vars_, hollow);
  std::erase_if(pages_, hollow);
  // Pass 2 — a retired slot is still *live* while some surviving shadow
  // epoch names it: a future covers() check against that epoch needs the
  // slot's component in the checking actor's clock. Everything else is
  // garbage — a retired task never acts again, and epochs only ever
  // originate from shadows, so a slot absent from every shadow can never
  // be compared against again.
  std::set<int> live;
  const auto note = [&](const Shadow& sh) {
    if (sh.write.epoch.valid() && retired_.contains(sh.write.epoch.slot)) {
      live.insert(sh.write.epoch.slot);
    }
    for (const Access& r : sh.reads) {
      if (retired_.contains(r.epoch.slot)) {
        live.insert(r.epoch.slot);
      }
    }
  };
  for (const auto& [addr, sh] : vars_) {
    note(sh);
  }
  for (const auto& [page, sh] : pages_) {
    note(sh);
  }
  const auto dead = [&](int slot) {
    return retired_.contains(slot) && !live.contains(slot);
  };
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    Actor& a = actors_[i];
    const int self = static_cast<int>(i);
    // An actor keeps its own component (its epochs must stay stampable
    // even if it is itself retired); everything dead is dropped.
    if (a.clock.prune([&](int s) { return s != self && dead(s); }) > 0) {
      a.snap.reset();
    }
  }
  drain_.prune(dead);
  for (auto& [obj, clock] : sync_) {
    clock.prune(dead);
  }
  std::erase_if(sync_, [](const auto& kv) { return kv.second.empty(); });
  // Pruned slots exist in no clock but their own, and a retired task's
  // clock is never joined anywhere after its completion release — they
  // cannot re-propagate, so stop tracking them. Still-live slots stay
  // retired and are collected by a later pass.
  std::erase_if(retired_, [&](int s) { return !live.contains(s); });
}

template <typename NameFn>
void Detector::check(Shadow& sh, trace::RaceKind kind, NameFn&& name,
                     int slot, bool is_write, std::string_view site) {
  if (sh.poisoned) {
    return;
  }
  Actor& a = actors_[static_cast<std::size_t>(slot)];
  const VectorClock& clock = a.clock;
  const Epoch cur{slot, clock.of(slot)};
  // Fast path: a repeat of the access already recorded at this epoch.
  if (is_write && sh.reads.empty() && sh.write.epoch.slot == slot &&
      sh.write.epoch.value == cur.value) {
    return;
  }
  const auto make_access = [&](bool w) {
    return Access{cur, w, a.name, std::string{site}, snapshot(slot)};
  };
  if (sh.write.epoch.valid() && sh.write.epoch.slot != slot &&
      !clock.covers(sh.write.epoch)) {
    report(kind, name(), sh.write, make_access(is_write));
    sh.poisoned = true;
    return;
  }
  if (is_write) {
    for (const Access& r : sh.reads) {
      if (r.epoch.slot != slot && !clock.covers(r.epoch)) {
        report(kind, name(), r, make_access(true));
        sh.poisoned = true;
        return;
      }
    }
    sh.write = make_access(true);
    sh.reads.clear();
    return;
  }
  // Read: keep one frontier entry per actor; entries that happened-before
  // this read are covered by it (any later conflicting write that races
  // them races this read too) and can be dropped.
  for (Access& r : sh.reads) {
    if (r.epoch.slot == slot) {
      if (r.epoch.value != cur.value) {
        r = make_access(false);
      }
      return;
    }
  }
  std::erase_if(sh.reads,
                [&](const Access& r) { return clock.covers(r.epoch); });
  sh.reads.push_back(make_access(false));
}

void Detector::report(trace::RaceKind kind, const std::string& what,
                      const Access& prev, const Access& cur) {
  const auto rw = [](const Access& a) { return a.is_write ? "write" : "read"; };
  // Canonical endpoint order. Which of the two unordered accesses the
  // detector encounters first is a property of the schedule (stress seeds
  // permute it); sorting by actor/site makes the report — including its
  // message — bit-identical across seeds, so a bug has ONE signature.
  const auto canon_key = [](const Access& a) {
    return std::tie(a.actor, a.site);
  };
  const Access& a = canon_key(cur) < canon_key(prev) ? cur : prev;
  const Access& b = &a == &prev ? cur : prev;
  trace::RaceReport r;
  r.kind = kind;
  r.what = what;
  r.first = trace::RaceEndpoint{a.actor, a.site,
                                a.clock ? a.clock->render() : "{}", a.is_write};
  r.second = trace::RaceEndpoint{b.actor, b.site,
                                 b.clock ? b.clock->render() : "{}",
                                 b.is_write};
  r.time = (sched_ != nullptr && sched_->in_thread()) ? sched_->now()
                                                      : sim::TimePoint{};
  r.message = std::string{trace::to_string(kind)} + " on " + what + ": " +
              rw(a) + " by '" + a.actor + "' at " + a.site + " " +
              r.first.clock + " is unordered with " + rw(b) + " by '" +
              b.actor + "' at " + b.site + " " + r.second.clock;
  trace_.record(r);
  if (mode_ == Mode::Abort) {
    if (abort_handler_) {
      abort_handler_(trace_.records().back());
    } else {
      throw RaceError(r.message);
    }
  }
}

std::string Detector::page_name(std::uint64_t page) const {
  return "page@" + std::to_string(page * page_bytes_) + "[" +
         std::to_string(page_bytes_) + "]";
}

bool Detector::lock_path(const sim::Mutex* from, const sim::Mutex* to,
                         std::vector<const sim::Mutex*>& path,
                         std::set<const sim::Mutex*>& seen) const {
  if (!seen.insert(from).second) {
    return false;
  }
  path.push_back(from);
  if (from == to) {
    return true;
  }
  const auto it = lock_graph_.find(from);
  if (it != lock_graph_.end()) {
    for (const sim::Mutex* next : it->second.out) {
      if (lock_path(next, to, path, seen)) {
        return true;
      }
    }
  }
  path.pop_back();
  return false;
}

void Detector::on_lock_acquired(const sim::Mutex& m) {
  if (sched_ == nullptr || !sched_->in_thread()) {
    return;
  }
  const std::vector<const sim::Mutex*>& held =
      sched_->current().held_locks();
  if (held.size() < 2) {
    return;
  }
  const sim::Mutex* fresh = &m;
  const std::string& thread = sched_->current().name();
  for (const sim::Mutex* prior : held) {
    if (prior == fresh) {
      continue;
    }
    const auto key = std::pair{prior, fresh};
    if (edge_example_.contains(key)) {
      continue;
    }
    edge_example_[key] = "thread '" + thread + "' acquired '" +
                         fresh->name() + "' while holding '" + prior->name() +
                         "'";
    lock_graph_[prior].out.push_back(fresh);
    // A new edge prior -> fresh closes a cycle iff fresh already reaches
    // prior — check immediately so the cycle is reported on the schedule
    // that created it, deadlock or not.
    std::vector<const sim::Mutex*> path;
    std::set<const sim::Mutex*> seen;
    if (!lock_path(fresh, prior, path, seen)) {
      continue;
    }
    // Canonical key: the cycle's participants, order-independent.
    std::vector<std::string> names;
    names.reserve(path.size());
    for (const sim::Mutex* n : path) {
      names.emplace_back(n->name());
    }
    std::vector<std::string> sorted = names;
    std::sort(sorted.begin(), sorted.end());
    std::string cycle_key;
    for (const std::string& n : sorted) {
      cycle_key += n + "|";
    }
    if (!reported_cycles_.insert(cycle_key).second) {
      continue;
    }
    std::string cycle = "'" + std::string{prior->name()} + "'";
    for (const sim::Mutex* n : path) {
      cycle += " -> '" + std::string{n->name()} + "'";
    }
    // The edge that already ran in the opposite order: the path's last hop
    // into `prior`.
    const sim::Mutex* back_from = path.size() >= 2 ? path[path.size() - 2]
                                                   : fresh;
    std::string counterexample;
    const auto back = edge_example_.find(std::pair{back_from, prior});
    if (back != edge_example_.end()) {
      counterexample = back->second;
    }
    trace::RaceReport r;
    r.kind = trace::RaceKind::LockOrder;
    r.what = cycle;
    r.first = trace::RaceEndpoint{"", counterexample, "", false};
    r.second = trace::RaceEndpoint{thread, edge_example_[key], "", false};
    r.time = sched_->now();
    r.message = std::string{trace::to_string(trace::RaceKind::LockOrder)} +
                ": potential deadlock " + cycle + "; " + edge_example_[key] +
                (counterexample.empty() ? "" : "; " + counterexample);
    trace_.record(r);
    if (mode_ == Mode::Abort) {
      if (abort_handler_) {
        abort_handler_(trace_.records().back());
      } else {
        throw RaceError(r.message);
      }
    }
  }
}

std::unique_ptr<Detector> make_detector(apu::Machine& machine) {
  const apu::RaceCheckMode mode = machine.env().race_check;
  if (mode == apu::RaceCheckMode::Off) {
    return nullptr;
  }
  auto detector = std::make_unique<Detector>(
      mode == apu::RaceCheckMode::Abort ? Detector::Mode::Abort
                                        : Detector::Mode::Report,
      machine.page_bytes());
  detector->attach(machine.sched());
  return detector;
}

}  // namespace zc::race
