#include "zc/service/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace zc::service {

ArrivalProcess::ArrivalProcess(const ArrivalParams& params)
    : params_{params},
      rng_{params.seed},
      next_id_(static_cast<std::size_t>(std::max(params.tenants, 1)), 0) {
  if (params_.tenants <= 0) {
    throw std::invalid_argument("ArrivalProcess: tenants must be positive");
  }
  if (params_.sockets <= 0) {
    throw std::invalid_argument("ArrivalProcess: sockets must be positive");
  }
  if (params_.min_pages == 0 || params_.max_pages < params_.min_pages) {
    throw std::invalid_argument(
        "ArrivalProcess: need 0 < min_pages <= max_pages");
  }
  if (params_.min_kernels <= 0 || params_.max_kernels < params_.min_kernels) {
    throw std::invalid_argument(
        "ArrivalProcess: need 0 < min_kernels <= max_kernels");
  }
  if (params_.pareto_alpha <= 0.0) {
    throw std::invalid_argument("ArrivalProcess: pareto_alpha must be > 0");
  }
}

Arrival ArrivalProcess::next() {
  if (done()) {
    throw std::logic_error("ArrivalProcess::next called after done()");
  }
  // Fixed draw order per arrival (gap, tenant, pages, kernels, flavor) so
  // the sequence is a pure function of the seed.
  Arrival a;
  const double u_gap = rng_.uniform();
  if (burst_left_ > 0) {
    --burst_left_;  // the gap draw is still consumed, keeping the
                    // downstream sequence aligned with the unfaulted run
    a.gap = sim::Duration::zero();
  } else {
    a.gap = sim::Duration::from_us(-std::log(1.0 - u_gap) *
                                   params_.base_interarrival.us());
  }
  const auto tenant = static_cast<int>(
      rng_.uniform_index(static_cast<std::uint64_t>(params_.tenants)));
  // Bounded Pareto via inverse transform, truncated at max_pages.
  const double u_size = rng_.uniform();
  const double raw =
      static_cast<double>(params_.min_pages) *
      std::pow(1.0 - u_size, -1.0 / params_.pareto_alpha);
  const auto pages = std::min<std::uint64_t>(
      params_.max_pages,
      std::max<std::uint64_t>(params_.min_pages,
                              static_cast<std::uint64_t>(raw)));
  const int kernels =
      params_.min_kernels +
      static_cast<int>(rng_.uniform_index(static_cast<std::uint64_t>(
          params_.max_kernels - params_.min_kernels + 1)));
  const std::uint64_t flavor_draw = rng_.uniform_index(3);

  workloads::ServiceJobSpec& spec = a.spec;
  spec.tenant = tenant;
  spec.id = next_id_[static_cast<std::size_t>(tenant)]++;
  spec.flavor =
      params_.tenant_flavors.empty()
          ? static_cast<workloads::JobFlavor>(flavor_draw)
          : params_.tenant_flavors[static_cast<std::size_t>(tenant) %
                                   params_.tenant_flavors.size()];
  spec.pages = pages;
  spec.kernels = kernels;
  spec.device = tenant % params_.sockets;
  spec.kernel_compute = params_.kernel_compute;
  ++issued_;
  return a;
}

}  // namespace zc::service
