#include "zc/service/service.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "zc/core/circuit_breaker.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/target_region.hpp"
#include "zc/fault/engine.hpp"
#include "zc/mem/memory_system.hpp"
#include "zc/stats/quantile_sketch.hpp"

namespace zc::service {

using apu::ServicePolicy;
using omp::OffloadStack;
using sim::Duration;
using sim::LockGuard;
using sim::TimePoint;
using workloads::ServiceJobSpec;

namespace {

[[nodiscard]] bool at_least(ServicePolicy policy, ServicePolicy floor) {
  return static_cast<int>(policy) >= static_cast<int>(floor);
}

/// Per-tenant accumulation while the run is live.
struct TenantAgg {
  TenantAgg(int threshold, Duration window, Duration cooldown)
      : breaker{threshold, window, cooldown} {}

  workloads::TenantServiceStats stats;
  stats::QuantileSketch sojourn_us;
  omp::CircuitBreaker breaker;
  bool paused = false;        ///< de-admitted by memory pressure
  std::uint64_t running = 0;  ///< jobs of this tenant currently in flight
  TimePoint breaker_opened_at;
  /// (id, checksum) of completed jobs; summed in id order at finalize so
  /// the per-tenant checksum is independent of retirement interleaving.
  std::vector<std::pair<std::uint64_t, double>> completed;
};

/// Everything the arrival fiber and the workers share, under one mutex.
struct Core {
  Core(DrrParams drr, const ServiceParams& p, int sockets)
      : queue{std::move(drr)},
        budget(static_cast<std::size_t>(sockets), 0),
        charged(static_cast<std::size_t>(sockets), 0) {
    for (int t = 0; t < p.config.tenants; ++t) {
      tenants.emplace_back(p.breaker_threshold, p.breaker_window,
                           p.breaker_cooldown);
      TenantAgg& a = tenants.back();
      a.stats.tenant = t;
      a.stats.weight = queue.params().weights[static_cast<std::size_t>(t)];
    }
  }

  DrrScheduler queue;
  std::vector<TenantAgg> tenants;
  std::vector<std::uint64_t> budget;   ///< admission budget per socket
  std::vector<std::uint64_t> charged;  ///< admitted-but-unretired bytes
  bool budget_ready = false;  ///< warmup measured the budgets; dispatch may go
  bool arrivals_done = false;
  std::uint64_t in_flight = 0;
  std::uint64_t divergences = 0;
  std::vector<trace::ServiceJobRecord> records;
  std::vector<ShedRecord> sheds;
  std::vector<trace::FaultRecord> events;
  bool saw_arrival = false;
  TimePoint first_arrival;
  TimePoint last_retire;
};

struct SharedState {
  SharedState(DrrParams drr, const ServiceParams& p, int sockets)
      : core{mu, "ServiceCore", std::move(drr), p, sockets} {}

  sim::Mutex mu{"service"};
  sim::WaitList work;  ///< notified on arrivals, retires, and shutdown
  sim::GuardedBy<Core> core;
  /// Snapshot taken by finalize (the HSA stack dies with run_program;
  /// everything needed afterwards is copied out here).
  std::vector<workloads::TenantServiceStats> final_stats;
};

/// One dispatch decision, carried from the locked pick to the unlocked run.
struct Dispatch {
  ServiceJobSpec spec;
  TimePoint arrival;
  TimePoint start;
  std::uint64_t footprint = 0;
  double occupancy = 0.0;  ///< budget occupancy of the target socket
};

void push_event(Core& c, trace::FaultEvent event, int device, TimePoint now,
                int tenant, double factor = 1.0, std::uint64_t bytes = 0) {
  trace::FaultRecord r;
  r.event = event;
  r.device = device;
  r.time = now;
  r.bytes = bytes;
  r.factor = factor;
  r.tenant = tenant;
  c.events.push_back(r);
}

void shed_job(Core& c, const ServiceJobSpec& spec, TimePoint now,
              Duration retry_after, const std::string& why) {
  retry_after = max(retry_after, Duration::microseconds(1));
  TenantAgg& a = c.tenants[static_cast<std::size_t>(spec.tenant)];
  ++a.stats.shed;
  trace::ServiceJobRecord rec;
  rec.tenant = spec.tenant;
  rec.job = spec.id;
  rec.device = spec.device;
  rec.pages = spec.pages;
  rec.arrival = now;
  rec.start = now;
  rec.end = now;
  rec.outcome = trace::ServiceJobOutcome::Shed;
  c.records.push_back(rec);
  c.sheds.push_back(ShedRecord{
      spec.tenant, spec.id, now, retry_after,
      omp::OffloadError{
          omp::ErrorCode::JobShed,
          "tenant " + std::to_string(spec.tenant) + " job " +
              std::to_string(spec.id) + ": " + why + "; retry after " +
              retry_after.to_string(),
          spec.device}});
  push_event(c, trace::FaultEvent::JobShed, spec.device, now, spec.tenant);
}

/// Handle breaker transitions (time-based or trip-born) for one tenant.
void apply_transitions(
    Core& c, int tenant, int device,
    const std::vector<omp::CircuitBreaker::Transition>& transitions) {
  TenantAgg& a = c.tenants[static_cast<std::size_t>(tenant)];
  for (const auto& tr : transitions) {
    switch (tr.to) {
      case omp::CircuitBreaker::State::Open:
        ++a.stats.breaker_opens;
        a.breaker_opened_at = tr.at;
        push_event(c, trace::FaultEvent::TenantBreakerOpened, device, tr.at,
                   tenant);
        break;
      case omp::CircuitBreaker::State::Closed:
        push_event(c, trace::FaultEvent::TenantBreakerClosed, device, tr.at,
                   tenant);
        break;
      case omp::CircuitBreaker::State::HalfOpen:
        break;  // probing is internal; only open/closed edges are events
    }
  }
}

void advance_breakers(Core& c, const ServiceParams& p, int sockets,
                      TimePoint now) {
  if (p.config.policy != ServicePolicy::Full) {
    return;
  }
  for (int t = 0; t < p.config.tenants; ++t) {
    apply_transitions(
        c, t, t % sockets,
        c.tenants[static_cast<std::size_t>(t)].breaker.advance_to(now));
  }
}

/// Memory-pressure de-admission (policy `full`): crossing the high
/// watermark pauses the lowest-priority tenant with pending work (never
/// tenant 0); falling under the low watermark — or the drain phase —
/// resumes paused tenants, highest priority first.
void pressure_step(Core& c, const ServiceParams& p, OffloadStack& stack,
                   int sockets, TimePoint now) {
  if (p.config.policy != ServicePolicy::Full) {
    return;
  }
  auto resume = [&](int t) {
    c.tenants[static_cast<std::size_t>(t)].paused = false;
    push_event(c, trace::FaultEvent::JobResumed, t % sockets, now, t);
  };
  if (c.arrivals_done) {
    // Drain: everything still queued must be allowed to finish (admission
    // control keeps gating actual dispatch).
    for (int t = 0; t < p.config.tenants; ++t) {
      if (c.tenants[static_cast<std::size_t>(t)].paused) {
        resume(t);
      }
    }
    return;
  }
  const mem::MemorySystem& memory = stack.hsa().memory();
  double worst = 0.0;
  for (int s = 0; s < sockets; ++s) {
    const auto capacity = static_cast<double>(memory.hbm_capacity());
    if (capacity > 0) {
      worst = std::max(
          worst, static_cast<double>(memory.hbm_used(s)) / capacity);
    }
  }
  if (worst > p.deadmit_high) {
    for (int t = p.config.tenants - 1; t >= 1; --t) {
      TenantAgg& a = c.tenants[static_cast<std::size_t>(t)];
      if (!a.paused && c.queue.queue_len(t) > 0) {
        a.paused = true;
        ++a.stats.deadmissions;
        push_event(c, trace::FaultEvent::JobDeAdmitted, t % sockets, now, t);
        break;  // one tenant per pass: pressure relief is gradual
      }
    }
  } else if (worst < p.deadmit_low) {
    for (int t = 0; t < p.config.tenants; ++t) {
      if (c.tenants[static_cast<std::size_t>(t)].paused) {
        resume(t);
        break;
      }
    }
  }
}

/// Locked half of the dispatch: DRR pop + admission accounting. A head
/// that does not fit its socket's remaining budget is returned to the
/// front of its queue and the tenant masked for this pass — other
/// tenants' heads still get their chance (no head-of-line blocking across
/// tenants).
std::optional<Dispatch> pick_job(Core& c, const ServiceParams& p,
                                 OffloadStack& stack, std::uint64_t page,
                                 TimePoint now) {
  const bool full = p.config.policy == ServicePolicy::Full;
  const bool admit = at_least(p.config.policy, ServicePolicy::Admit);
  const auto n = static_cast<std::size_t>(p.config.tenants);
  std::vector<char> blocked(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    const TenantAgg& a = c.tenants[t];
    const auto st = a.breaker.state();
    const bool breaker_blocked =
        full && (st == omp::CircuitBreaker::State::Open ||
                 (st == omp::CircuitBreaker::State::HalfOpen &&
                  a.running > 0));  // half-open: one probe at a time
    blocked[t] = (full && a.paused) || breaker_blocked ? 1 : 0;
  }
  fault::FaultEngine& faults = stack.machine().faults();
  for (;;) {
    std::optional<Pick> pick = c.queue.pop(now, blocked);
    if (!pick) {
      return std::nullopt;
    }
    const ServiceJobSpec& spec = pick->job.spec;
    const auto t = static_cast<std::size_t>(spec.tenant);
    const auto s = static_cast<std::size_t>(spec.device);
    const std::uint64_t footprint =
        workloads::job_footprint_bytes(spec, page);
    if (admit) {
      if (footprint > c.budget[s]) {
        // Larger than the whole budget: waiting can never help.
        shed_job(c, spec, now, p.arrival.base_interarrival,
                 "footprint " + std::to_string(footprint) +
                     " B exceeds the device admission budget");
        continue;
      }
      bool fits = c.charged[s] + footprint <= c.budget[s];
      if (fits) {
        const fault::Injection inj =
            faults.consult(fault::Site::AdmissionFlap, now);
        if (inj.fired()) {
          push_event(c, trace::FaultEvent::AdmissionFlapInjected,
                     spec.device, now, spec.tenant);
          fits = false;  // admission briefly reads "full"
        }
      }
      if (!fits) {
        c.queue.push_front(pick->job);
        blocked[t] = 1;
        continue;
      }
    }
    TenantAgg& a = c.tenants[t];
    if (pick->starvation_boost) {
      ++a.stats.starvation_boosts;
      push_event(c, trace::FaultEvent::StarvationBoost, spec.device, now,
                 spec.tenant);
    }
    c.charged[s] += footprint;
    ++c.in_flight;
    ++a.running;
    Dispatch d;
    d.spec = spec;
    d.arrival = pick->job.arrival;
    d.start = now;
    d.footprint = footprint;
    d.occupancy =
        c.budget[s] > 0 ? static_cast<double>(c.charged[s]) /
                              static_cast<double>(c.budget[s])
                        : 0.0;
    return d;
  }
}

/// Locked half of retirement; returns the socket occupancy after the
/// job's charge is released (pushed to the adaptive policy outside the
/// lock).
double retire_job(Core& c, const ServiceParams& p, const Dispatch& d,
                  double functional, bool ok, std::uint64_t page,
                  TimePoint now) {
  const auto t = static_cast<std::size_t>(d.spec.tenant);
  const auto s = static_cast<std::size_t>(d.spec.device);
  c.charged[s] -= d.footprint;
  --c.in_flight;
  TenantAgg& a = c.tenants[t];
  --a.running;
  ++a.stats.admitted;
  c.last_retire = max(c.last_retire, now);

  trace::ServiceJobRecord rec;
  rec.tenant = d.spec.tenant;
  rec.job = d.spec.id;
  rec.device = d.spec.device;
  rec.pages = d.spec.pages;
  rec.arrival = d.arrival;
  rec.start = d.start;
  rec.end = now;

  bool completed = false;
  if (ok) {
    const double expected = workloads::service_job_checksum(d.spec, page);
    if (functional == expected) {
      completed = true;
    } else {
      ++c.divergences;  // demoted to Failed; the suite asserts this stays 0
    }
  }
  if (completed) {
    ++a.stats.completed;
    a.completed.emplace_back(d.spec.id,
                             workloads::service_job_checksum(d.spec, page));
    a.sojourn_us.record((now - d.arrival).us());
    rec.outcome = trace::ServiceJobOutcome::Completed;
  } else {
    ++a.stats.failed;
    rec.outcome = trace::ServiceJobOutcome::Failed;
    if (p.config.policy == ServicePolicy::Full) {
      apply_transitions(c, d.spec.tenant, d.spec.device,
                        a.breaker.record_trip(now));
    }
  }
  c.records.push_back(rec);
  return c.budget[s] > 0 ? static_cast<double>(c.charged[s]) /
                               static_cast<double>(c.budget[s])
                         : 0.0;
}

/// Arrival-side admission to the queueing stage (lock held).
void offer_job(Core& c, const ServiceParams& p, const ServiceJobSpec& spec,
               TimePoint now) {
  TenantAgg& a = c.tenants[static_cast<std::size_t>(spec.tenant)];
  ++a.stats.offered;
  if (!c.saw_arrival) {
    c.saw_arrival = true;
    c.first_arrival = now;
  }
  if (p.config.policy == ServicePolicy::Full &&
      a.breaker.state() == omp::CircuitBreaker::State::Open) {
    const Duration left =
        a.breaker_opened_at + p.breaker_cooldown - now;
    shed_job(c, spec, now, left, "tenant circuit breaker is open");
    return;
  }
  if (!c.queue.push(QueuedJob{spec, now})) {
    const auto depth = static_cast<std::int64_t>(
        c.queue.queue_len(spec.tenant) + 1);
    shed_job(c, spec, now,
             p.arrival.base_interarrival * static_cast<double>(depth),
             "tenant admission queue is full (" +
                 std::to_string(c.queue.queue_len(spec.tenant)) + " jobs)");
    return;
  }
}

void worker_fiber(OffloadStack& stack, const ServiceParams& p,
                  const std::shared_ptr<SharedState>& sh, int sockets) {
  sim::Scheduler& sched = stack.sched();
  omp::OffloadRuntime& rt = stack.omp();
  const std::uint64_t page = stack.machine().page_bytes();
  for (;;) {
    std::optional<Dispatch> dis;
    bool finished = false;
    {
      LockGuard lock{sh->mu, sched};
      Core& c = sh->core.get(sched);
      advance_breakers(c, p, sockets, sched.now());
      pressure_step(c, p, stack, sockets, sched.now());
      if (c.budget_ready) {
        dis = pick_job(c, p, stack, page, sched.now());
      }
      finished = !dis && c.arrivals_done && c.queue.empty() &&
                 c.in_flight == 0;
    }
    if (finished) {
      sh->work.notify_all(sched, sched.now());
      return;
    }
    if (!dis) {
      // Bounded idle tick (not a bare wait): breaker cooldowns and
      // watermark transitions are time-based, so a sleeping dispatcher
      // must keep virtual time moving even with no notifications coming.
      (void)sh->work.wait_for(sched, p.idle_tick, "service-idle");
      continue;
    }
    rt.set_service_pressure(dis->spec.device, dis->occupancy);
    stack.hsa().set_thread_tenant(dis->spec.tenant);
    double functional = 0.0;
    bool ok = false;
    try {
      functional = workloads::run_service_job(stack, dis->spec);
      ok = true;
    } catch (const omp::OffloadError&) {
      ok = false;  // typed runtime failure -> Failed outcome + breaker trip
    }
    stack.hsa().set_thread_tenant(-1);
    double occ_after = 0.0;
    {
      LockGuard lock{sh->mu, sched};
      occ_after = retire_job(sh->core.get(sched), p, *dis, functional, ok,
                             page, sched.now());
    }
    rt.set_service_pressure(dis->spec.device, occ_after);
    sh->work.notify_all(sched, sched.now());
  }
}

void arrival_fiber(OffloadStack& stack, const ServiceParams& p,
                   const std::shared_ptr<SharedState>& sh, int sockets) {
  sim::Scheduler& sched = stack.sched();
  omp::OffloadRuntime& rt = stack.omp();
  // Warmup: one trivial region per device loads the image and pays this
  // thread's lazy init *before* the budgets are measured, so the pinned
  // runtime pool is already accounted and the AsyncCopy call numbering the
  // fault schedules target is stable across policies.
  for (int d = 0; d < sockets; ++d) {
    omp::HostArray<double> warm{rt, 8, "svc-warmup-" + std::to_string(d), d};
    warm.first_touch();
    rt.target(omp::TargetRegion{
        .name = "svc_warmup",
        .maps = {warm.tofrom()},
        .compute = Duration::microseconds(5),
        .body = [](hsa::KernelContext&, const omp::ArgTranslator&) {},
        .device = d,
    });
    warm.release();
  }
  {
    LockGuard lock{sh->mu, sched};
    Core& c = sh->core.get(sched);
    const mem::MemorySystem& memory = stack.hsa().memory();
    for (int s = 0; s < sockets; ++s) {
      const std::uint64_t used = memory.hbm_used(s);
      const std::uint64_t capacity = memory.hbm_capacity();
      const std::uint64_t free = capacity > used ? capacity - used : 0;
      c.budget[static_cast<std::size_t>(s)] = static_cast<std::uint64_t>(
          p.admit_fraction * static_cast<double>(free));
    }
    c.budget_ready = true;
  }
  sh->work.notify_all(sched, sched.now());

  ArrivalProcess arrivals{p.arrival};
  fault::FaultEngine& faults = stack.machine().faults();
  while (!arrivals.done()) {
    Arrival a = arrivals.next();
    const fault::Injection burst =
        faults.consult(fault::Site::TenantBurst, sched.now());
    if (burst.fired()) {
      const auto extra = static_cast<std::uint64_t>(
          std::max(1.0, std::ceil(burst.factor)));
      arrivals.inject_burst(extra);
      LockGuard lock{sh->mu, sched};
      push_event(sh->core.get(sched), trace::FaultEvent::TenantBurstInjected,
                 a.spec.device, sched.now(), a.spec.tenant, burst.factor);
    }
    if (!a.gap.is_zero()) {
      sched.sleep_for(a.gap);
    }
    {
      LockGuard lock{sh->mu, sched};
      offer_job(sh->core.get(sched), p, a.spec, sched.now());
    }
    sh->work.notify_all(sched, sched.now());
  }
  {
    LockGuard lock{sh->mu, sched};
    sh->core.get(sched).arrivals_done = true;
  }
  sh->work.notify_all(sched, sched.now());
}

DrrParams drr_params(const ServiceParams& p) {
  DrrParams drr;
  if (p.weights.empty()) {
    for (int t = 0; t < p.config.tenants; ++t) {
      drr.weights.push_back(
          static_cast<std::uint64_t>(p.config.tenants - t));
    }
  } else {
    drr.weights = p.weights;
  }
  drr.quantum_pages = p.quantum_pages;
  // `off` runs the unbounded-FIFO collapse baseline: no queue bound (one
  // slot per possible job), no deficits.
  const bool bounded = at_least(p.config.policy, ServicePolicy::Admit);
  drr.queue_limit = bounded ? p.queue_limit : p.arrival.jobs + 1;
  drr.starvation_budget = p.starvation_budget;
  drr.fifo = !at_least(p.config.policy, ServicePolicy::Fair);
  return drr;
}

void validate(const ServiceParams& p, int sockets) {
  if (!p.config.enabled()) {
    throw std::invalid_argument(
        "run_service: service disabled (tenant count is 0; set "
        "OMPX_APU_SERVICE=<tenants>:<policy>)");
  }
  if (p.arrival.tenants != p.config.tenants) {
    throw std::invalid_argument(
        "run_service: arrival.tenants (" +
        std::to_string(p.arrival.tenants) + ") != config.tenants (" +
        std::to_string(p.config.tenants) + ")");
  }
  if (p.arrival.sockets != sockets) {
    throw std::invalid_argument(
        "run_service: arrival.sockets (" +
        std::to_string(p.arrival.sockets) + ") != run sockets (" +
        std::to_string(sockets) + ")");
  }
  if (!p.weights.empty() &&
      p.weights.size() != static_cast<std::size_t>(p.config.tenants)) {
    throw std::invalid_argument(
        "run_service: weights must be empty or one per tenant");
  }
  if (p.workers <= 0) {
    throw std::invalid_argument("run_service: workers must be positive");
  }
  if (p.admit_fraction <= 0.0 || p.admit_fraction > 1.0) {
    throw std::invalid_argument(
        "run_service: admit_fraction must be in (0, 1]");
  }
  if (p.deadmit_low >= p.deadmit_high) {
    throw std::invalid_argument(
        "run_service: deadmit_low must be below deadmit_high");
  }
}

}  // namespace

ServiceResult run_service(const ServiceParams& params) {
  int sockets = 1;
  if (params.base.sockets > 0) {
    sockets = params.base.sockets;
  } else if (params.base.topology) {
    sockets = params.base.topology->sockets;
  }
  validate(params, sockets);

  auto slot = std::make_shared<std::shared_ptr<SharedState>>();
  workloads::Program program;
  program.binary.name =
      "service-T" + std::to_string(params.config.tenants) + "-" +
      apu::to_string(params.config.policy);
  program.setup_threads = [params, slot, sockets](OffloadStack& stack) {
    *slot = std::make_shared<SharedState>(drr_params(params), params,
                                          sockets);
    stack.hsa().configure_tenants(params.config.tenants);
    stack.sched().spawn("svc-arrival",
                        [&stack, params, shared = *slot, sockets] {
                          arrival_fiber(stack, params, shared, sockets);
                        });
    for (int w = 0; w < params.workers; ++w) {
      stack.sched().spawn("svc-worker-" + std::to_string(w),
                          [&stack, params, shared = *slot, sockets] {
                            worker_fiber(stack, params, shared, sockets);
                          });
    }
  };
  program.finalize = [params, slot](OffloadStack& stack) {
    const std::shared_ptr<SharedState>& sh = *slot;
    // Post-run, scheduler drained: unguarded access is the sanctioned
    // quiescent-reader pattern.
    Core& c = sh->core.unguarded();
    const std::vector<hsa::TenantCounters>& counters =
        stack.hsa().tenant_counters();
    const Duration makespan =
        c.saw_arrival ? c.last_retire - c.first_arrival : Duration::zero();
    double total = 0.0;
    sh->final_stats.clear();
    for (int t = 0; t < params.config.tenants; ++t) {
      TenantAgg& a = c.tenants[static_cast<std::size_t>(t)];
      std::sort(a.completed.begin(), a.completed.end());
      double checksum = 0.0;
      for (const auto& [id, cs] : a.completed) {
        checksum += cs;
      }
      a.stats.checksum = checksum;
      total += checksum;
      if (a.sojourn_us.count() > 0) {
        a.stats.p50_us = a.sojourn_us.quantile(0.50);
        a.stats.p99_us = a.sojourn_us.quantile(0.99);
        a.stats.p999_us = a.sojourn_us.quantile(0.999);
      }
      if (makespan > Duration::zero()) {
        a.stats.goodput_jps =
            static_cast<double>(a.stats.completed) / makespan.sec();
      }
      if (static_cast<std::size_t>(t) < counters.size()) {
        a.stats.counters = counters[static_cast<std::size_t>(t)];
      }
      sh->final_stats.push_back(a.stats);
    }
    return total;
  };

  workloads::RunResult run = workloads::run_program(program, params.base);
  const std::shared_ptr<SharedState>& sh = *slot;
  Core& c = sh->core.unguarded();  // stack destroyed; no threads left
  run.service_tenants = sh->final_stats;
  for (const trace::FaultRecord& r : c.events) {
    run.faults.record(r);
  }
  ServiceResult result;
  result.run = std::move(run);
  result.jobs = std::move(c.records);
  result.sheds = std::move(c.sheds);
  result.checksum_divergences = c.divergences;
  return result;
}

}  // namespace zc::service
