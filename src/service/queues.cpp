#include "zc/service/queues.hpp"

#include <stdexcept>

namespace zc::service {

DrrScheduler::DrrScheduler(DrrParams params)
    : params_{std::move(params)},
      queues_(params_.weights.size()),
      deficits_(params_.weights.size(), 0) {
  if (params_.weights.empty()) {
    throw std::invalid_argument("DrrScheduler: weights must be non-empty");
  }
  for (const std::uint64_t w : params_.weights) {
    if (w == 0) {
      throw std::invalid_argument("DrrScheduler: weights must be positive");
    }
  }
  if (params_.quantum_pages == 0) {
    throw std::invalid_argument("DrrScheduler: quantum_pages must be > 0");
  }
  if (params_.queue_limit == 0) {
    throw std::invalid_argument("DrrScheduler: queue_limit must be > 0");
  }
}

bool DrrScheduler::push(const QueuedJob& job) {
  auto& q = queues_.at(static_cast<std::size_t>(job.spec.tenant));
  if (q.size() >= params_.queue_limit) {
    return false;
  }
  q.push_back(job);
  return true;
}

void DrrScheduler::push_front(const QueuedJob& job) {
  // Re-queueing a popped head cannot overflow: the pop freed its slot and
  // nothing else can have filled it between pop and push_front (both run
  // under the service lock).
  queues_.at(static_cast<std::size_t>(job.spec.tenant)).push_front(job);
}

std::size_t DrrScheduler::total_queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) {
    n += q.size();
  }
  return n;
}

std::optional<Pick> DrrScheduler::pop(sim::TimePoint now,
                                      const std::vector<char>& blocked) {
  const std::size_t n = queues_.size();
  if (blocked.size() != n) {
    throw std::invalid_argument("DrrScheduler::pop: blocked mask size");
  }
  auto eligible = [&](std::size_t t) {
    return blocked[t] == 0 && !queues_[t].empty();
  };

  // Starvation watchdog first: any eligible head older than the budget is
  // served immediately — oldest wins — so a heavy neighbour can delay a
  // light tenant by at most the budget, never indefinitely.
  if (!params_.fifo) {
    std::size_t starved = n;
    for (std::size_t t = 0; t < n; ++t) {
      if (!eligible(t)) {
        continue;
      }
      if (now - queues_[t].front().arrival < params_.starvation_budget) {
        continue;
      }
      if (starved == n ||
          queues_[t].front().arrival < queues_[starved].front().arrival) {
        starved = t;
      }
    }
    if (starved != n) {
      Pick pick{queues_[starved].front(), /*starvation_boost=*/true};
      queues_[starved].pop_front();
      return pick;
    }
  }

  // FIFO collapse baseline: globally oldest head, no deficits.
  if (params_.fifo) {
    std::size_t oldest = n;
    for (std::size_t t = 0; t < n; ++t) {
      if (!eligible(t)) {
        continue;
      }
      if (oldest == n ||
          queues_[t].front().arrival < queues_[oldest].front().arrival) {
        oldest = t;
      }
    }
    if (oldest == n) {
      return std::nullopt;
    }
    Pick pick{queues_[oldest].front(), false};
    queues_[oldest].pop_front();
    return pick;
  }

  // Deficit round robin, one job per pop. The rotation state spans pops:
  // arriving at the cursor tenant replenishes it by `weight * quantum`
  // exactly once (`cursor_charged_`); it then spends its deficit across as
  // many pops as it lasts before the cursor rotates on. This is packet DRR
  // with "send one packet" sliced per call — a tenant mid-quantum keeps
  // the floor, an idle tenant banks nothing, and a big job waits the same
  // weighted number of rounds it would in the textbook formulation.
  bool any = false;
  for (std::size_t t = 0; t < n; ++t) {
    any = any || eligible(t);
  }
  if (!any) {
    return std::nullopt;
  }
  // Progress bound: each visit to a tenant adds a full quantum, so any
  // head becomes affordable within ceil(max_cost / (weight * quantum))
  // visits; 1024 rounds is far beyond any real page footprint.
  const std::size_t max_visits = n * 1024;
  for (std::size_t visit = 0; visit < max_visits; ++visit) {
    const std::size_t t = cursor_;
    if (!eligible(t)) {
      deficits_[t] = 0;  // an idle tenant banks nothing (standard DRR)
      cursor_ = (t + 1) % n;
      cursor_charged_ = false;
      continue;
    }
    if (!cursor_charged_) {
      deficits_[t] += params_.weights[t] * params_.quantum_pages;
      cursor_charged_ = true;
    }
    const std::uint64_t cost = cost_of(queues_[t].front());
    if (deficits_[t] < cost) {
      cursor_ = (t + 1) % n;  // quantum spent; next tenant's turn
      cursor_charged_ = false;
      continue;
    }
    deficits_[t] -= cost;
    Pick pick{queues_[t].front(), false};
    queues_[t].pop_front();
    if (queues_[t].empty()) {
      deficits_[t] = 0;
      cursor_ = (t + 1) % n;
      cursor_charged_ = false;
    }
    return pick;
  }
  throw std::logic_error(
      "DrrScheduler::pop: no affordable head after replenishment");
}

}  // namespace zc::service
