#include "zc/workloads/buggy.hpp"

#include <cstddef>
#include <memory>

#include "zc/core/host_array.hpp"

namespace zc::workloads {

using omp::ArgTranslator;
using omp::BufferUse;
using omp::HostArray;
using omp::MapEntry;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::TargetRegion;
using sim::literals::operator""_us;

namespace {

/// Corpus buffers are one small page of doubles: large enough to exercise
/// page-granularity accounting, small enough that every config runs fast.
constexpr std::size_t kN = 512;

/// Deterministic functional values; the virtual first touch that models
/// the write must already have been recorded by the caller.
void fill(HostArray<double>& a, double scale, double bias) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = scale * static_cast<double>(i) + bias;
  }
}

/// One single-threaded Program around `body(rt, checksum_out)`.
template <typename Body>
Program single_thread_program(const char* name, Body body) {
  auto slot = std::make_shared<double>(0.0);
  Program program;
  program.binary.name = name;
  program.setup_threads = [slot, body](OffloadStack& stack) {
    *slot = 0.0;
    stack.sched().spawn("buggy-main", [&stack, slot, body] {
      body(stack.omp(), *slot);
    });
  };
  program.finalize = [slot](OffloadStack&) { return *slot; };
  return program;
}

}  // namespace

Program make_buggy_missing_map() {
  return single_thread_program(
      "buggy-missing-map", [](OffloadRuntime& rt, double& out) {
        HostArray<double> mapped{rt, kN, "mapped"};
        HostArray<double> orphan{rt, kN, "orphan"};
        mapped.first_touch();
        fill(mapped, 1.0, 0.0);
        orphan.first_touch();
        fill(orphan, 2.0, 1.0);
        double sum = 0.0;
        // The bug: `orphan` is consumed from the "enclosing data
        // environment" without any enclosing map. Zero-copy translates it
        // to itself; Legacy Copy has no device copy to hand the kernel.
        TargetRegion region{
            .name = "use-orphan",
            .maps = {mapped.to()},
            .uses = {BufferUse{orphan.addr(), orphan.bytes(),
                               hsa::Access::Read}},
            .compute = 5_us,
            .body =
                [&](hsa::KernelContext& ctx, const ArgTranslator& tr) {
                  const double* m = ctx.ptr<double>(tr.device(mapped.addr()));
                  const double* o = ctx.ptr<double>(tr.device(orphan.addr()));
                  for (std::size_t i = 0; i < kN; ++i) {
                    sum += m[i] + o[i];
                  }
                }};
        rt.target(region);
        out = sum;
        mapped.release();
        orphan.release();
      });
}

Program make_buggy_stale_data() {
  return single_thread_program(
      "buggy-stale-data", [](OffloadRuntime& rt, double& out) {
        HostArray<double> x{rt, kN, "x"};
        x.first_touch();
        fill(x, 1.0, 0.0);
        const MapEntry enter = x.to();
        rt.target_enter_data({&enter, 1});
        TargetRegion region{
            .name = "double-x",
            .maps = {},
            .uses = {BufferUse{x.addr(), x.bytes(), hsa::Access::ReadWrite}},
            .compute = 5_us,
            .body =
                [&](hsa::KernelContext& ctx, const ArgTranslator& tr) {
                  double* p = ctx.ptr<double>(tr.device(x.addr()));
                  for (std::size_t i = 0; i < kN; ++i) {
                    p[i] *= 2.0;
                  }
                }};
        rt.target(region);
        // The bug: the mapping exits with `delete` (no copy-back) and the
        // host reads the result without a `target update from`. Zero-copy
        // configs see the doubled values; Legacy Copy reads the stale
        // pre-kernel host copy.
        const MapEntry del = MapEntry::del(x.addr(), x.bytes());
        rt.target_exit_data({&del, 1});
        rt.host_read(x.range());
        double sum = 0.0;
        for (std::size_t i = 0; i < kN; ++i) {
          sum += x[i];
        }
        out = sum;
        x.release();
      });
}

Program make_buggy_double_delete() {
  return single_thread_program(
      "buggy-double-delete", [](OffloadRuntime& rt, double& out) {
        HostArray<double> x{rt, kN, "x"};
        x.first_touch();
        fill(x, 1.0, 0.0);
        const MapEntry map = x.tofrom();
        rt.target_enter_data({&map, 1});
        rt.target_enter_data({&map, 1});  // refcount 2
        TargetRegion region{
            .name = "double-x",
            .maps = {},
            .uses = {BufferUse{x.addr(), x.bytes(), hsa::Access::ReadWrite}},
            .compute = 5_us,
            .body =
                [&](hsa::KernelContext& ctx, const ArgTranslator& tr) {
                  double* p = ctx.ptr<double>(tr.device(x.addr()));
                  for (std::size_t i = 0; i < kN; ++i) {
                    p[i] *= 2.0;
                  }
                }};
        rt.target(region);
        // The bug: `delete` drops the mapping regardless of the refcount,
        // so the structured `exit data tofrom` that follows releases a
        // range that is no longer mapped — a mapping violation under
        // Legacy Copy, a silent no-op under zero-copy.
        const MapEntry del = MapEntry::del(x.addr(), x.bytes());
        rt.target_exit_data({&del, 1});
        const MapEntry exit = x.tofrom();
        rt.target_exit_data({&exit, 1});
        double sum = 0.0;
        for (std::size_t i = 0; i < kN; ++i) {
          sum += x[i];
        }
        out = sum;
        x.release();
      });
}

Program make_buggy_coherence() {
  return single_thread_program(
      "buggy-coherence", [](OffloadRuntime& rt, double& out) {
        HostArray<double> x{rt, kN, "x"};
        HostArray<double> result{rt, 64, "result"};
        x.first_touch();
        fill(x, 1.0, 0.0);
        result.first_touch();
        result[0] = 0.0;
        const MapEntry enter = x.to();
        rt.target_enter_data({&enter, 1});
        // The bug: the host rewrites the mapped buffer *after* the `to`
        // map snapshotted it, with no `always` modifier or `update to`
        // before the kernel reads it. Zero-copy kernels see the rewrite;
        // Legacy Copy kernels read the stale device snapshot.
        rt.host_first_touch(x.range());
        fill(x, 2.0, 1.0);
        TargetRegion region{
            .name = "sum-x",
            .maps = {result.tofrom()},
            .uses = {BufferUse{x.addr(), x.bytes(), hsa::Access::Read}},
            .compute = 5_us,
            .body =
                [&](hsa::KernelContext& ctx, const ArgTranslator& tr) {
                  const double* p = ctx.ptr<double>(tr.device(x.addr()));
                  double* r = ctx.ptr<double>(tr.device(result.addr()));
                  for (std::size_t i = 0; i < kN; ++i) {
                    r[0] += p[i];
                  }
                }};
        rt.target(region);
        const MapEntry del = MapEntry::del(x.addr(), x.bytes());
        rt.target_exit_data({&del, 1});
        out = result[0];
        result.release();
        x.release();
      });
}

Program make_buggy_nowait_race() {
  return single_thread_program(
      "buggy-nowait-race", [](OffloadRuntime& rt, double& out) {
        HostArray<double> x{rt, kN, "x"};
        x.first_touch();
        fill(x, 1.0, 0.0);
        TargetRegion region{.name = "inflight",
                            .maps = {x.tofrom()},
                            .compute = 50_us,
                            .body = {}};
        omp::TargetTask task = rt.target_nowait(region);
        // The bug: the kernel is still in flight — this host write has no
        // happens-before path from the kernel's page accesses. The static
        // verifier cannot prove `x` safe (nowait), so a pruned detector
        // run must still instrument it and report the race.
        rt.host_first_touch(x.range());
        rt.target_wait(task);
        double sum = 0.0;
        for (std::size_t i = 0; i < kN; ++i) {
          sum += x[i];
        }
        out = sum;
        x.release();
      });
}

}  // namespace zc::workloads
