#include "zc/workloads/openfoam.hpp"

#include <memory>
#include <string>

#include "zc/core/host_array.hpp"

namespace zc::workloads {

using mem::AddrRange;
using mem::VirtAddr;
using omp::BufferUse;
using omp::HostArray;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::TargetRegion;

Program make_openfoam(const OpenfoamParams& params) {
  auto checksum = std::make_shared<double>(0.0);
  Program program;
  program.binary.name = "openfoam-pcg";
  // Built with `#pragma omp requires unified_shared_memory` in every
  // translation unit.
  program.binary.requires_unified_shared_memory = true;
  program.binary.globals.push_back(omp::GlobalVar{"relax", sizeof(double)});

  program.setup_threads = [params, checksum](OffloadStack& stack) {
    stack.sched().spawn("omp-host-0", [&stack, params, checksum] {
      OffloadRuntime& rt = stack.omp();

      // Mesh, matrix and field storage: plain host allocations; in USM the
      // GPU uses them directly, no mapping anywhere.
      const VirtAddr matrix =
          rt.host_alloc(params.matrix_bytes(), "foam-matrix");
      rt.host_first_touch(AddrRange{matrix, params.matrix_bytes()});
      HostArray<double> p{rt, static_cast<std::size_t>(params.cells), "foam-p"};
      HostArray<double> q{rt, static_cast<std::size_t>(params.cells), "foam-q"};
      HostArray<double> residual{rt, 8, "foam-residual"};
      const std::size_t functional = 64;
      for (std::size_t i = 0; i < functional; ++i) {
        p[i] = 1.0 + 0.001 * static_cast<double>(i);
      }
      p.first_touch();
      q.first_touch();
      residual.first_touch();

      // Solver control global, updated by the host between time steps and
      // read by kernels through the USM double indirection.
      const VirtAddr relax = rt.global_host_addr("relax");
      double* relax_host = stack.memory().space().translate_as<double>(relax);
      *relax_host = 0.9;

      const VirtAddr pv = p.addr();
      const VirtAddr qv = q.addr();
      const VirtAddr rv = residual.addr();

      for (int ts = 0; ts < params.time_steps; ++ts) {
        *relax_host = 0.9 + 0.001 * static_cast<double>(ts % 7);
        for (int it = 0; it < params.pcg_iterations; ++it) {
          // SpMV: q = A * p (matrix streamed, fields updated in place).
          rt.target(TargetRegion{
              .name = "foam_spmv",
              .uses = {BufferUse{matrix, params.matrix_bytes(),
                                 hsa::Access::Read},
                       BufferUse{pv, p.bytes(), hsa::Access::Read},
                       BufferUse{qv, q.bytes(), hsa::Access::Write},
                       BufferUse{relax, sizeof(double), hsa::Access::Read}},
              .compute = params.spmv_compute,
              .body =
                  [pv, qv, relax, functional](hsa::KernelContext& ctx,
                                              const omp::ArgTranslator& tr) {
                    const double* pd = ctx.ptr<double>(tr.device(pv));
                    double* qd = ctx.ptr<double>(tr.device(qv));
                    const double rf = *ctx.ptr<double>(tr.device(relax));
                    for (std::size_t i = 0; i < functional; ++i) {
                      qd[i] = rf * pd[i] + (i > 0 ? 0.25 * pd[i - 1] : 0.0);
                    }
                  },
          });
          // Dot product with cross-team reduction into shared storage.
          rt.target(TargetRegion{
              .name = "foam_dot",
              .uses = {BufferUse{pv, p.bytes(), hsa::Access::Read},
                       BufferUse{qv, q.bytes(), hsa::Access::Read},
                       BufferUse{rv, residual.bytes(), hsa::Access::Write}},
              .compute = params.dot_compute,
              .body =
                  [pv, qv, rv, functional](hsa::KernelContext& ctx,
                                           const omp::ArgTranslator& tr) {
                    const double* pd = ctx.ptr<double>(tr.device(pv));
                    const double* qd = ctx.ptr<double>(tr.device(qv));
                    double dot = 0.0;
                    for (std::size_t i = 0; i < functional; ++i) {
                      dot += pd[i] * qd[i];
                    }
                    ctx.ptr<double>(tr.device(rv))[0] = dot;
                  },
          });
          // Host-side convergence check: reads the GPU-written residual
          // directly from the one shared storage — the USM idiom.
          const double res = residual[0];
          if (res < 0.0) {
            break;  // never taken with this synthetic data; shape only
          }
          // AXPY field update.
          rt.target(TargetRegion{
              .name = "foam_axpy",
              .uses = {BufferUse{pv, p.bytes(), hsa::Access::ReadWrite},
                       BufferUse{qv, q.bytes(), hsa::Access::Read}},
              .compute = params.axpy_compute,
              .body =
                  [pv, qv, functional](hsa::KernelContext& ctx,
                                       const omp::ArgTranslator& tr) {
                    double* pd = ctx.ptr<double>(tr.device(pv));
                    const double* qd = ctx.ptr<double>(tr.device(qv));
                    for (std::size_t i = 0; i < functional; ++i) {
                      pd[i] += 1e-4 * qd[i];
                    }
                  },
          });
        }
      }
      *checksum = residual[0] + p[0];
      p.release();
      q.release();
      residual.release();
      rt.host_free(matrix);
    });
  };
  program.finalize = [checksum](OffloadStack&) { return *checksum; };
  return program;
}

}  // namespace zc::workloads
