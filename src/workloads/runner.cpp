#include "zc/workloads/runner.hpp"

#include <stdexcept>

namespace zc::workloads {

RunResult run_program(const Program& program, const RunOptions& options) {
  if (!program.setup_threads) {
    throw std::invalid_argument("run_program: program has no setup_threads");
  }
  apu::Machine::Config machine_config = omp::OffloadStack::machine_config_for(
      options.config, options.jitter, options.seed);
  if (options.costs) {
    machine_config.costs = *options.costs;
  }
  if (options.topology) {
    machine_config.topology = *options.topology;
  }
  if (options.transparent_huge_pages) {
    machine_config.env.transparent_huge_pages = *options.transparent_huge_pages;
  }
  if (!options.fault_spec.empty()) {
    machine_config.env.ompx_apu_faults = options.fault_spec;
  }
  if (!options.watchdog_spec.empty()) {
    machine_config.env.watchdog = apu::parse_watchdog(options.watchdog_spec);
  }
  if (!options.race_check_spec.empty()) {
    machine_config.env.race_check =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_RACE_CHECK", options.race_check_spec}})
            .race_check;
  }
  omp::OffloadStack stack{
      std::move(machine_config),
      omp::OffloadStack::program_for(options.config, program.binary)};
  stack.hsa().kernel_trace().set_keep_records(options.keep_kernel_records);
  if (options.stress_seed) {
    stack.sched().enable_stress(*options.stress_seed);
  }

  program.setup_threads(stack);
  stack.sched().run();

  RunResult result;
  result.config = options.config;
  result.wall_time = stack.sched().horizon().since_start();
  result.sim_events = stack.sched().events();
  result.stats = stack.hsa().stats();
  result.kernels = stack.hsa().kernel_trace().summary();
  result.ledger = stack.hsa().ledger();
  if (options.keep_kernel_records) {
    result.kernel_records = stack.hsa().kernel_trace().records();
  }
  result.decisions = stack.omp().decision_trace();
  result.faults = stack.hsa().fault_trace();
  if (const race::Detector* d = stack.race_detector()) {
    result.races = d->trace();
  }
  if (program.finalize) {
    result.checksum = program.finalize(stack);
  }
  return result;
}

stats::RepeatedRuns repeat_program(const Program& program, RunOptions options,
                                   int reps) {
  return stats::repeat(reps, options.seed,
                       [&program, options](std::uint64_t seed) mutable {
                         RunOptions o = options;
                         o.seed = seed;
                         return run_program(program, o).wall_time;
                       });
}

}  // namespace zc::workloads
