#include "zc/workloads/runner.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "zc/check/analyzer.hpp"
#include "zc/check/ir.hpp"
#include "zc/race/prune.hpp"
#include "zc/stats/summary.hpp"

namespace zc::workloads {

namespace {

[[nodiscard]] apu::Machine::Config build_machine_config(
    const RunOptions& options, bool race_detector_off) {
  apu::Machine::Config machine_config = omp::OffloadStack::machine_config_for(
      options.config, options.jitter, options.seed);
  if (options.costs) {
    machine_config.costs = *options.costs;
  }
  if (options.topology) {
    machine_config.topology = *options.topology;
  }
  if (options.transparent_huge_pages) {
    machine_config.env.transparent_huge_pages = *options.transparent_huge_pages;
  }
  if (!options.fault_spec.empty()) {
    machine_config.env.ompx_apu_faults = options.fault_spec;
  }
  if (!options.watchdog_spec.empty()) {
    machine_config.env.watchdog = apu::parse_watchdog(options.watchdog_spec);
  }
  if (!options.race_check_spec.empty() && !race_detector_off) {
    machine_config.env.race_check =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_RACE_CHECK", options.race_check_spec}})
            .race_check;
  }
  if (options.sockets > 0) {
    machine_config.env.ompx_apu_sockets = options.sockets;
  }
  if (!options.pressure_spec.empty()) {
    machine_config.env.ompx_apu_pressure =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_PRESSURE", options.pressure_spec}})
            .ompx_apu_pressure;
  }
  if (!options.automigrate_spec.empty()) {
    machine_config.env.ompx_apu_automigrate =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_AUTOMIGRATE", options.automigrate_spec}})
            .ompx_apu_automigrate;
  }
  if (!options.thp_spec.empty()) {
    const apu::RunEnvironment parsed =
        apu::RunEnvironment::from_env({{"THP", options.thp_spec}});
    machine_config.env.thp = parsed.thp;
    machine_config.env.transparent_huge_pages = parsed.transparent_huge_pages;
  }
  if (!options.fabric_spec.empty()) {
    machine_config.env.ompx_apu_fabric =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_FABRIC", options.fabric_spec}})
            .ompx_apu_fabric;
  }
  return machine_config;
}

/// One complete simulated run of the program. `recorder` (optional)
/// observes the offload IR; `prune` (optional) installs the proven-safe
/// page filter on the race detector before any thread runs.
[[nodiscard]] RunResult run_stack(const Program& program,
                                  const RunOptions& options,
                                  apu::Machine::Config machine_config,
                                  check::Recorder* recorder,
                                  const race::PruneFilter* prune) {
  omp::OffloadStack stack{
      std::move(machine_config),
      omp::OffloadStack::program_for(options.config, program.binary)};
  stack.hsa().kernel_trace().set_keep_records(options.keep_kernel_records);
  stack.hsa().copy_trace().set_keep_records(options.keep_kernel_records);
  if (options.stress_seed) {
    stack.sched().enable_stress(*options.stress_seed);
  }
  if (recorder != nullptr) {
    stack.omp().set_recorder(recorder);
  }
  if (prune != nullptr && stack.race_detector() != nullptr) {
    stack.race_detector()->set_prune_filter(prune);
  }

  program.setup_threads(stack);
  stack.sched().run();

  RunResult result;
  result.config = options.config;
  result.wall_time = stack.sched().horizon().since_start();
  result.sim_events = stack.sched().events();
  result.stats = stack.hsa().stats();
  result.kernels = stack.hsa().kernel_trace().summary();
  result.ledger = stack.hsa().ledger();
  if (options.keep_kernel_records) {
    result.kernel_records = stack.hsa().kernel_trace().records();
    result.copy_records = stack.hsa().copy_trace().records();
  }
  result.copies = stack.hsa().copy_trace().summary();
  {
    const std::vector<hsa::DeviceCounters>& counters =
        stack.hsa().device_counters();
    result.devices.resize(counters.size());
    std::vector<std::vector<double>> durations(counters.size());
    for (const trace::KernelRecord& k : result.kernel_records) {
      if (k.device >= 0 && static_cast<std::size_t>(k.device) < durations.size()) {
        durations[static_cast<std::size_t>(k.device)].push_back(
            k.duration().us());
      }
    }
    for (std::size_t d = 0; d < counters.size(); ++d) {
      DeviceStats& ds = result.devices[d];
      ds.counters = counters[d];
      ds.hbm_used = stack.hsa().memory().hbm_used(static_cast<int>(d));
      ds.ddr_used = stack.hsa().memory().ddr_used();
      if (!durations[d].empty()) {
        const stats::SortedSamples sorted{std::move(durations[d])};
        ds.kernel_p50_us = sorted.quantile(0.5);
        ds.kernel_p95_us = sorted.quantile(0.95);
      }
    }
  }
  result.decisions = stack.omp().decision_trace();
  result.faults = stack.hsa().fault_trace();
  if (const race::Detector* d = stack.race_detector()) {
    result.races = d->trace();
    result.race_pruned_stamps = d->pruned_stamps();
    result.race_checked_stamps = d->checked_stamps();
  }
  if (program.finalize) {
    result.checksum = program.finalize(stack);
  }
  return result;
}

using WallClock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(WallClock::time_point start) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - start)
      .count();
}

}  // namespace

RunResult run_program(const Program& program, const RunOptions& options) {
  if (!program.setup_threads) {
    throw std::invalid_argument("run_program: program has no setup_threads");
  }
  apu::CheckMode check_mode = apu::CheckMode::Off;
  if (!options.check_spec.empty()) {
    check_mode = apu::RunEnvironment::from_env(
                     {{"OMPX_APU_CHECK", options.check_spec}})
                     .ompx_apu_check;
  }
  bool race_pruned = false;
  if (!options.race_check_spec.empty()) {
    const apu::RunEnvironment parsed = apu::RunEnvironment::from_env(
        {{"OMPX_APU_RACE_CHECK", options.race_check_spec}});
    race_pruned =
        parsed.race_check_pruned && parsed.race_check != apu::RaceCheckMode::Off;
  }

  if (check_mode == apu::CheckMode::Off && !race_pruned) {
    return run_stack(program, options,
                     build_machine_config(options, /*race_detector_off=*/false),
                     nullptr, nullptr);
  }

  // --- recorded flow ------------------------------------------------------
  // `:pruned` needs two phases: a record-only run with the detector off
  // (phase 1, charged to check_phase_ms together with the analysis), then
  // the measured run instrumenting only the unproven ranges. The two
  // phases share (seed, config), so the bump allocator reproduces the same
  // addresses and the page filter carries over. Plain OMPX_APU_CHECK
  // records on the single measured run — the recorder is passive, so
  // recording does not perturb it.
  RunResult result;
  check::Recorder recorder{
      build_machine_config(options, /*race_detector_off=*/true)
          .env.page_bytes()};
  double phase_ms = 0.0;
  check::Analysis analysis;
  if (race_pruned) {
    const WallClock::time_point start = WallClock::now();
    (void)run_stack(program, options,
                    build_machine_config(options, /*race_detector_off=*/true),
                    &recorder, nullptr);
    analysis = check::analyze(recorder.build(), options.config);
    phase_ms = ms_since(start);
    const race::PruneFilter filter = race::PruneFilter::from_partition(
        analysis.partition.proven_safe, analysis.partition.must_check,
        recorder.page_bytes());
    result = run_stack(program, options,
                       build_machine_config(options, /*race_detector_off=*/false),
                       nullptr, &filter);
  } else {
    result = run_stack(program, options,
                       build_machine_config(options, /*race_detector_off=*/false),
                       &recorder, nullptr);
    const WallClock::time_point analyze_start = WallClock::now();
    analysis = check::analyze(recorder.build(), options.config);
    phase_ms = ms_since(analyze_start);
  }
  result.check = analysis.trace;
  result.race_partition = analysis.partition;
  result.check_phase_ms = phase_ms;

  if (check_mode == apu::CheckMode::Abort && !result.check.clean()) {
    const check::CheckFinding& first = result.check.findings.front();
    throw omp::OffloadError(
        omp::ErrorCode::CheckViolation,
        "OMPX_APU_CHECK=abort: " + std::to_string(result.check.findings.size()) +
            " finding(s), first: " + first.to_string(),
        first.device);
  }
  return result;
}

stats::RepeatedRuns repeat_program(const Program& program, RunOptions options,
                                   int reps) {
  return stats::repeat(reps, options.seed,
                       [&program, options](std::uint64_t seed) mutable {
                         RunOptions o = options;
                         o.seed = seed;
                         return run_program(program, o).wall_time;
                       });
}

}  // namespace zc::workloads
