#include "zc/workloads/runner.hpp"

#include <stdexcept>
#include <utility>

#include "zc/stats/summary.hpp"

namespace zc::workloads {

RunResult run_program(const Program& program, const RunOptions& options) {
  if (!program.setup_threads) {
    throw std::invalid_argument("run_program: program has no setup_threads");
  }
  apu::Machine::Config machine_config = omp::OffloadStack::machine_config_for(
      options.config, options.jitter, options.seed);
  if (options.costs) {
    machine_config.costs = *options.costs;
  }
  if (options.topology) {
    machine_config.topology = *options.topology;
  }
  if (options.transparent_huge_pages) {
    machine_config.env.transparent_huge_pages = *options.transparent_huge_pages;
  }
  if (!options.fault_spec.empty()) {
    machine_config.env.ompx_apu_faults = options.fault_spec;
  }
  if (!options.watchdog_spec.empty()) {
    machine_config.env.watchdog = apu::parse_watchdog(options.watchdog_spec);
  }
  if (!options.race_check_spec.empty()) {
    machine_config.env.race_check =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_RACE_CHECK", options.race_check_spec}})
            .race_check;
  }
  if (options.sockets > 0) {
    machine_config.env.ompx_apu_sockets = options.sockets;
  }
  if (!options.pressure_spec.empty()) {
    machine_config.env.ompx_apu_pressure =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_PRESSURE", options.pressure_spec}})
            .ompx_apu_pressure;
  }
  if (!options.automigrate_spec.empty()) {
    machine_config.env.ompx_apu_automigrate =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_AUTOMIGRATE", options.automigrate_spec}})
            .ompx_apu_automigrate;
  }
  if (!options.thp_spec.empty()) {
    const apu::RunEnvironment parsed =
        apu::RunEnvironment::from_env({{"THP", options.thp_spec}});
    machine_config.env.thp = parsed.thp;
    machine_config.env.transparent_huge_pages = parsed.transparent_huge_pages;
  }
  if (!options.fabric_spec.empty()) {
    machine_config.env.ompx_apu_fabric =
        apu::RunEnvironment::from_env(
            {{"OMPX_APU_FABRIC", options.fabric_spec}})
            .ompx_apu_fabric;
  }
  omp::OffloadStack stack{
      std::move(machine_config),
      omp::OffloadStack::program_for(options.config, program.binary)};
  stack.hsa().kernel_trace().set_keep_records(options.keep_kernel_records);
  stack.hsa().copy_trace().set_keep_records(options.keep_kernel_records);
  if (options.stress_seed) {
    stack.sched().enable_stress(*options.stress_seed);
  }

  program.setup_threads(stack);
  stack.sched().run();

  RunResult result;
  result.config = options.config;
  result.wall_time = stack.sched().horizon().since_start();
  result.sim_events = stack.sched().events();
  result.stats = stack.hsa().stats();
  result.kernels = stack.hsa().kernel_trace().summary();
  result.ledger = stack.hsa().ledger();
  if (options.keep_kernel_records) {
    result.kernel_records = stack.hsa().kernel_trace().records();
    result.copy_records = stack.hsa().copy_trace().records();
  }
  result.copies = stack.hsa().copy_trace().summary();
  {
    const std::vector<hsa::DeviceCounters>& counters =
        stack.hsa().device_counters();
    result.devices.resize(counters.size());
    std::vector<std::vector<double>> durations(counters.size());
    for (const trace::KernelRecord& k : result.kernel_records) {
      if (k.device >= 0 && static_cast<std::size_t>(k.device) < durations.size()) {
        durations[static_cast<std::size_t>(k.device)].push_back(
            k.duration().us());
      }
    }
    for (std::size_t d = 0; d < counters.size(); ++d) {
      DeviceStats& ds = result.devices[d];
      ds.counters = counters[d];
      ds.hbm_used = stack.hsa().memory().hbm_used(static_cast<int>(d));
      ds.ddr_used = stack.hsa().memory().ddr_used();
      if (!durations[d].empty()) {
        const stats::SortedSamples sorted{std::move(durations[d])};
        ds.kernel_p50_us = sorted.quantile(0.5);
        ds.kernel_p95_us = sorted.quantile(0.95);
      }
    }
  }
  result.decisions = stack.omp().decision_trace();
  result.faults = stack.hsa().fault_trace();
  if (const race::Detector* d = stack.race_detector()) {
    result.races = d->trace();
  }
  if (program.finalize) {
    result.checksum = program.finalize(stack);
  }
  return result;
}

stats::RepeatedRuns repeat_program(const Program& program, RunOptions options,
                                   int reps) {
  return stats::repeat(reps, options.seed,
                       [&program, options](std::uint64_t seed) mutable {
                         RunOptions o = options;
                         o.seed = seed;
                         return run_program(program, o).wall_time;
                       });
}

}  // namespace zc::workloads
