#include "zc/workloads/qmcpack.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "zc/core/host_array.hpp"

namespace zc::workloads {

using mem::AddrRange;
using mem::VirtAddr;
using omp::BufferUse;
using omp::HostArray;
using omp::MapEntry;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::TargetRegion;

std::uint64_t QmcpackParams::walker_buf_bytes() const {
  // Walker state grows linearly with the problem size (more electrons).
  return walker_buf_base * static_cast<std::uint64_t>(size);
}

std::vector<int> qmcpack_paper_sizes() { return {2, 4, 8, 16, 24, 32, 64, 128}; }

namespace {

/// State shared between the virtual host threads of one run.
struct SharedState {
  SharedState(int threads, int sockets)
      : spline(static_cast<std::size_t>(sockets)),
        spline_ready(static_cast<std::size_t>(sockets)),
        block_barrier{threads},
        partials(static_cast<std::size_t>(threads)) {}
  /// One read-only spline replica per socket (an affinity-aware app keeps
  /// its big lookup tables in local HBM; with MPI-per-socket this happens
  /// naturally, one copy per rank).
  std::vector<VirtAddr> spline;
  std::vector<sim::Latch> spline_ready;
  std::uint64_t spline_bytes = 0;
  sim::Barrier block_barrier;
  /// Per-thread checksum contributions, reduced in thread-index order at
  /// finalize. Accumulating into one shared double at thread exit would make
  /// the floating-point summation order follow thread *completion* order —
  /// results would then differ in the low bits across interleavings, and the
  /// stress-mode differential tests require bit-identical checksums under
  /// every schedule.
  std::vector<double> partials;
};

/// Deterministic per-(thread,walker,step) hash used to rotate the spline
/// window and to vary functional values without an RNG.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
                    c * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  x *= 0xd6e8feb86659fd93ULL;
  x ^= x >> 29;
  return x;
}

/// Per-walker persistent device-resident state.
struct Walker {
  HostArray<double> pos;
  HostArray<double> vel;
  HostArray<double> psi;
  HostArray<double> grads;

  Walker(OffloadRuntime& rt, int t, int w, std::size_t doubles, int home)
      : pos{rt, doubles, "pos-t" + std::to_string(t) + "w" + std::to_string(w),
            home},
        vel{rt, doubles, "vel-t" + std::to_string(t) + "w" + std::to_string(w),
            home},
        psi{rt, doubles, "psi-t" + std::to_string(t) + "w" + std::to_string(w),
            home},
        grads{rt, doubles,
              "grads-t" + std::to_string(t) + "w" + std::to_string(w), home} {}
};

void run_thread(OffloadStack& stack, const QmcpackParams& params, int tid,
                const std::shared_ptr<SharedState>& shared) {
  OffloadRuntime& rt = stack.omp();
  const std::uint64_t page = stack.machine().page_bytes();
  // §III-A affinity: thread tid offloads to the GPU of its socket.
  const int threads = std::max(1, params.threads);
  const int device = tid * params.sockets / threads;
  const bool socket_leader =
      tid == 0 || (tid - 1) * params.sockets / threads != device;

  // --- ahead-of-time bulk transfer of the shared spline table -------------
  // One replica per socket, allocated and read from file by that socket's
  // leader thread.
  auto& my_spline = shared->spline[static_cast<std::size_t>(device)];
  auto& my_ready = shared->spline_ready[static_cast<std::size_t>(device)];
  if (socket_leader) {
    shared->spline_bytes = params.spline_bytes();
    my_spline = rt.host_alloc(shared->spline_bytes,
                              "nio-spline-s" + std::to_string(device), device);
    // Wavefunction coefficients are read from HDF5 on the host: the pages
    // are CPU-resident before the GPU ever sees them.
    rt.host_first_touch(AddrRange{my_spline, shared->spline_bytes});
    my_ready.set(stack.sched());
  } else {
    my_ready.wait(stack.sched());
  }
  const MapEntry spline_map = MapEntry::to(my_spline, shared->spline_bytes);
  rt.target_data_begin({&spline_map, 1}, device);

  // --- per-walker persistent arrays ---------------------------------------
  const std::size_t doubles = params.walker_buf_bytes() / sizeof(double);
  const std::size_t functional = std::min<std::size_t>(doubles, 64);
  std::vector<Walker> walkers;
  walkers.reserve(static_cast<std::size_t>(params.walkers_per_thread));
  HostArray<double> reduce1{rt, params.reduce_bytes / sizeof(double),
                            "reduce1-t" + std::to_string(tid), device};
  HostArray<double> reduce2{rt, params.reduce_bytes / sizeof(double),
                            "reduce2-t" + std::to_string(tid), device};
  HostArray<double> spline_params{rt, 512, "params-t" + std::to_string(tid),
                                  device};

  std::vector<MapEntry> persistent;
  for (int w = 0; w < params.walkers_per_thread; ++w) {
    walkers.emplace_back(rt, tid, w, doubles, device);
    Walker& wk = walkers.back();
    for (std::size_t i = 0; i < functional; ++i) {
      wk.pos[i] = 0.01 * static_cast<double>(i + w);
      wk.vel[i] = 0.0;
      wk.psi[i] = 1.0;
    }
    wk.pos.first_touch();
    wk.vel.first_touch();
    wk.psi.first_touch();
    wk.grads.first_touch();
    persistent.push_back(wk.pos.to());
    persistent.push_back(wk.vel.to());
    persistent.push_back(wk.psi.tofrom());
    persistent.push_back(wk.grads.tofrom());
  }
  reduce1.first_touch();
  reduce2.first_touch();
  spline_params.first_touch();
  persistent.push_back(reduce1.alloc());
  persistent.push_back(reduce2.alloc());
  persistent.push_back(spline_params.to());
  rt.target_data_begin(persistent, device);

  const sim::Duration c = params.kernel_compute();
  const std::uint64_t window_bytes = params.spline_window_pages * page;
  double acc = 0.0;

  // Regions whose shape is invariant across steps are built once per
  // walker; only the spline window and the step hash mutate per step.
  struct StepCtx {
    std::uint64_t h = 0;
  };
  struct WalkerRegions {
    StepCtx ctx;
    TargetRegion drift;
    TargetRegion det;
    TargetRegion accum;
  };
  std::vector<WalkerRegions> regions(
      static_cast<std::size_t>(params.walkers_per_thread));
  const VirtAddr r1 = reduce1.addr();
  for (int w = 0; w < params.walkers_per_thread; ++w) {
    WalkerRegions& wr = regions[static_cast<std::size_t>(w)];
    Walker& wk = walkers[static_cast<std::size_t>(w)];
    const VirtAddr posv = wk.pos.addr();
    const VirtAddr psiv = wk.psi.addr();
    StepCtx* const ctx = &wr.ctx;

    // Kernel A: drift/diffusion update of walker positions.
    wr.drift = TargetRegion{
        .name = "nio_drift",
        .maps = {MapEntry::always_tofrom(posv, wk.pos.bytes()),
                 MapEntry::always_to(wk.vel.addr(), wk.vel.bytes())},
        .uses = {BufferUse{my_spline, window_bytes, hsa::Access::Read}},
        .compute = c,
        .body =
            [posv, functional, ctx](hsa::KernelContext& kc,
                                    const omp::ArgTranslator& tr) {
              double* p = kc.ptr<double>(tr.device(posv));
              for (std::size_t i = 0; i < functional; ++i) {
                p[i] += 1e-3 * static_cast<double>((ctx->h + i) % 7);
              }
            },
        .device = device,
    };

    // Kernel C: determinant update reading/writing psi and gradients.
    wr.det = TargetRegion{
        .name = "nio_det_update",
        .maps = {MapEntry::always_tofrom(psiv, wk.psi.bytes()),
                 MapEntry::always_tofrom(wk.grads.addr(), wk.grads.bytes())},
        .compute = c,
        .body =
            [psiv, posv, functional](hsa::KernelContext& kc,
                                     const omp::ArgTranslator& tr) {
              double* psi = kc.ptr<double>(tr.device(psiv));
              const double* p = kc.ptr<double>(tr.device(posv));
              for (std::size_t i = 0; i < functional; ++i) {
                psi[i] += 1e-6 * p[i];
              }
            },
        .device = device,
    };

    // Kernel D: cross-team reduction into host-allocated arrays, read on
    // the host right after (the pattern behind the paper's persistent
    // Eager-Maps-vs-Implicit-Z-C gap).
    wr.accum = TargetRegion{
        .name = "nio_accumulate",
        .maps = {MapEntry::always_tofrom(r1, reduce1.bytes()),
                 MapEntry::always_tofrom(reduce2.addr(), reduce2.bytes())},
        .compute = params.kernel_base,
        .body =
            [r1, psiv](hsa::KernelContext& kc, const omp::ArgTranslator& tr) {
              double* r = kc.ptr<double>(tr.device(r1));
              const double* psi = kc.ptr<double>(tr.device(psiv));
              r[0] += psi[0];
            },
        .device = device,
    };
  }

  const std::uint64_t spline_pages = shared->spline_bytes / page;
  const std::uint64_t win_pages =
      spline_pages > params.spline_window_pages
          ? spline_pages - params.spline_window_pages
          : 1;

  // --- Monte-Carlo steady state -------------------------------------------
  for (int step = 0; step < params.steps; ++step) {
    if (params.block_sync_period > 0 && step > 0 &&
        step % params.block_sync_period == 0) {
      // MC block boundary: all threads exchange walker statistics.
      shared->block_barrier.arrive_and_wait(stack.sched());
    }
    for (int w = 0; w < params.walkers_per_thread; ++w) {
      WalkerRegions& wr = regions[static_cast<std::size_t>(w)];
      wr.ctx.h =
          mix(static_cast<std::uint64_t>(tid), static_cast<std::uint64_t>(w),
              static_cast<std::uint64_t>(step));
      const VirtAddr window = my_spline + (wr.ctx.h % win_pages) * page;

      wr.drift.uses[0].addr = window;
      rt.target(wr.drift);

      // Kernel B: spline evaluation into a stack-allocated scratch buffer
      // (fresh host address every step -> Legacy Copy re-allocates device
      // storage for it on every map). The host fills in the evaluation
      // inputs first, so the fresh pages are CPU-resident when mapped.
      {
        HostArray<double> scratch{rt, params.scratch_bytes / sizeof(double),
                                  "scratch", device};
        scratch.first_touch();
        rt.target(TargetRegion{
            .name = "nio_spline_eval",
            .maps = {scratch.to(),
                     MapEntry::to(spline_params.addr(), spline_params.bytes())},
            .uses = {BufferUse{window, window_bytes, hsa::Access::Read}},
            .compute = c,
            .body = {},
            .device = device,
        });
        scratch.release();
      }

      rt.target(wr.det);
      rt.target(wr.accum);
      acc += reduce1[0];  // host-side consumption of the reduction
    }
  }

  rt.target_data_end(persistent, device);
  rt.target_data_end({&spline_map, 1}, device);
  for (Walker& wk : walkers) {
    wk.pos.release();
    wk.vel.release();
    wk.psi.release();
    wk.grads.release();
  }
  reduce1.release();
  reduce2.release();
  spline_params.release();
  shared->partials[static_cast<std::size_t>(tid)] = acc;
}

}  // namespace

Program make_qmcpack(const QmcpackParams& params) {
  // Fresh per-run shared state (the Program may be run repeatedly).
  auto slot = std::make_shared<std::shared_ptr<SharedState>>();
  Program program;
  program.binary.name = "qmcpack-nio-S" + std::to_string(params.size);
  program.setup_threads = [params, slot](OffloadStack& stack) {
    *slot = std::make_shared<SharedState>(params.threads, params.sockets);
    for (int t = 0; t < params.threads; ++t) {
      stack.sched().spawn("omp-host-" + std::to_string(t),
                          [&stack, params, t, shared = *slot] {
                            run_thread(stack, params, t, shared);
                          });
    }
  };
  program.finalize = [slot](OffloadStack&) {
    double checksum = 0.0;
    for (const double p : (*slot)->partials) {
      checksum += p;
    }
    return checksum;
  };
  return program;
}

}  // namespace zc::workloads
