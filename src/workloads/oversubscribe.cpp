#include "zc/workloads/oversubscribe.hpp"

#include <memory>
#include <string>
#include <vector>

#include "zc/core/host_array.hpp"

namespace zc::workloads {

using mem::AddrRange;
using mem::VirtAddr;
using omp::BufferUse;
using omp::HostArray;
using omp::MapEntry;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::TargetRegion;

int oversubscribe_chunks(const OversubscribeParams& p) {
  const double target =
      p.working_set_ratio * static_cast<double>(p.hbm_bytes);
  const auto chunks = static_cast<std::uint64_t>(
      (target + static_cast<double>(p.chunk_bytes) - 1.0) /
      static_cast<double>(p.chunk_bytes));
  return chunks < 1 ? 1 : static_cast<int>(chunks);
}

apu::Topology oversubscribed_topology(const OversubscribeParams& p) {
  apu::Topology t;
  t.hbm_bytes = p.hbm_bytes;
  return t;
}

namespace {

double oversubscribe_body(OffloadStack& stack, const OversubscribeParams& p) {
  OffloadRuntime& rt = stack.omp();
  const int chunks = oversubscribe_chunks(p);

  HostArray<double> acc{rt, 8, "oversub-acc", 0};
  acc.first_touch();
  const VirtAddr accv = acc.addr();

  // Warm the runtime the way a real application's first target op does:
  // the image and per-thread init land their pinned pool allocations on a
  // still-empty socket, before the working set oversubscribes it.
  rt.target(TargetRegion{
      .name = "oversub_warmup",
      .maps = {acc.always_tofrom()},
      .compute = sim::Duration::from_us(1),
      .body = [](hsa::KernelContext&, const omp::ArgTranslator&) {},
      .device = 0,
  });

  // The ballast: host-resident zero-copy pages totalling ratio * HBM.
  // Never read through a host pointer, so the backing stays unmaterialized
  // no matter how large the simulated working set is.
  std::vector<VirtAddr> ballast;
  ballast.reserve(static_cast<std::size_t>(chunks));
  for (int i = 0; i < chunks; ++i) {
    const VirtAddr b = rt.host_alloc(
        p.chunk_bytes, "oversub-ballast-" + std::to_string(i), 0);
    rt.host_first_touch(AddrRange{b, p.chunk_bytes});
    ballast.push_back(b);
  }

  HostArray<double> data{rt, static_cast<std::size_t>(p.data_bytes / 8),
                         "oversub-data", 0};
  data.first_touch();

  const VirtAddr datav = data.addr();
  for (int s = 0; s < p.sweeps; ++s) {
    for (int i = 0; i < chunks; ++i) {
      const VirtAddr b = ballast[static_cast<std::size_t>(i)];
      // Phase-scoped device presence: the chunk's pool copy (Legacy Copy)
      // or mapping bookkeeping (zero-copy) lives only for this phase, so
      // the pool peak stays one chunk even at 4x oversubscription.
      const std::vector<MapEntry> phase_maps{
          MapEntry::alloc(b, p.chunk_bytes), data.tofrom()};
      rt.target_data_begin(phase_maps, 0);
      rt.target(TargetRegion{
          .name = "oversub_sweep",
          .maps = {acc.always_tofrom()},
          .uses = {BufferUse{b, p.chunk_bytes, hsa::Access::Read},
                   BufferUse{datav, p.data_bytes, hsa::Access::ReadWrite}},
          .compute = p.per_kernel_compute,
          .body =
              [accv, datav, s, i](hsa::KernelContext& ctx,
                                  const omp::ArgTranslator& tr) {
                double* cell = ctx.ptr<double>(tr.device(datav));
                cell[0] += static_cast<double>((s + 1) * (i + 1));
                ctx.ptr<double>(tr.device(accv))[0] += cell[0];
              },
          .device = 0,
      });
      rt.target_data_end(phase_maps, 0);
    }
  }

  // Both the accumulator and the mapped-back data cell enter the checksum:
  // the identity check across configurations covers the copy-in/copy-out,
  // OOM-fallback, and reclaim/promote paths end to end.
  const double result = acc[0] + data[0];
  acc.release();
  data.release();
  for (const VirtAddr b : ballast) {
    rt.host_free(b);
  }
  return result;
}

}  // namespace

Program make_oversubscribe(const OversubscribeParams& params) {
  auto checksum = std::make_shared<double>(0.0);
  Program program;
  program.binary.name = "oversubscribe";
  program.setup_threads = [params, checksum](OffloadStack& stack) {
    stack.sched().spawn("omp-host-0", [&stack, params, checksum] {
      *checksum = oversubscribe_body(stack, params);
    });
  };
  program.finalize = [checksum](OffloadStack&) { return *checksum; };
  return program;
}

}  // namespace zc::workloads
