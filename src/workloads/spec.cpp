#include "zc/workloads/spec.hpp"

#include <memory>
#include <string>

#include "zc/core/host_array.hpp"

namespace zc::workloads {

using mem::AddrRange;
using mem::VirtAddr;
using omp::BufferUse;
using omp::HostArray;
using omp::MapEntry;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::TargetRegion;

namespace {

/// Program wrapper for a statically partitioned SPECaccel proxy: one
/// offloading host thread per device shard (SPECaccel itself runs a single
/// host thread — `devices == 1` reproduces exactly that). Each shard body
/// returns its partial checksum; the program checksum is their sum, which
/// keeps the five-configuration identity check meaningful per placement.
Program sharded_program(std::string name, int devices,
                        std::function<double(OffloadStack&, int)> shard_body) {
  const int n = devices < 1 ? 1 : devices;
  auto checksums =
      std::make_shared<std::vector<double>>(static_cast<std::size_t>(n), 0.0);
  Program program;
  program.binary.name = std::move(name);
  program.setup_threads = [shard_body = std::move(shard_body), checksums,
                           n](OffloadStack& stack) {
    for (int d = 0; d < n; ++d) {
      stack.sched().spawn("omp-host-" + std::to_string(d),
                          [&stack, shard_body, checksums, d] {
                            (*checksums)[static_cast<std::size_t>(d)] =
                                shard_body(stack, d);
                          });
    }
  };
  program.finalize = [checksums](OffloadStack&) {
    double sum = 0.0;
    for (const double c : *checksums) {
      sum += c;
    }
    return sum;
  };
  return program;
}

/// One stencil shard: `params` carries per-shard sizes; data homed on
/// socket `device`, kernels dispatched to that device.
double stencil_shard(OffloadStack& stack, const StencilParams& params,
                     int device) {
  OffloadRuntime& rt = stack.omp();

  // Input grid read from disk on the host; output grid never host-touched
  // before the GPU writes it.
  const VirtAddr in = rt.host_alloc(params.grid_bytes, "stencil-in", device);
  const VirtAddr out = rt.host_alloc(params.grid_bytes, "stencil-out", device);
  rt.host_first_touch(AddrRange{in, params.grid_bytes});

  HostArray<double> residual{rt, 8, "stencil-residual", device};
  residual.first_touch();

  const std::vector<MapEntry> region_maps{
      MapEntry::to(in, params.grid_bytes),
      MapEntry::from(out, params.grid_bytes),
      MapEntry::alloc(residual.addr(), residual.bytes())};
  rt.target_data_begin(region_maps, device);

  const VirtAddr resv = residual.addr();
  for (int iter = 0; iter < params.iterations; ++iter) {
    rt.target(TargetRegion{
        .name = "stencil_sweep",
        .maps = {MapEntry::always_tofrom(resv, residual.bytes())},
        .uses = {BufferUse{in, params.grid_bytes, hsa::Access::Read},
                 BufferUse{out, params.grid_bytes, hsa::Access::Write}},
        .compute = params.per_iter_compute,
        .body =
            [resv](hsa::KernelContext& ctx, const omp::ArgTranslator& tr) {
              ctx.ptr<double>(tr.device(resv))[0] += 0.5;
            },
        .device = device,
    });
  }
  rt.target_data_end(region_maps, device);

  const double result = residual[0];
  residual.release();
  rt.host_free(in);
  rt.host_free(out);
  return result;
}

/// One lbm shard (per-shard lattice sizes, homed on socket `device`).
double lbm_shard(OffloadStack& stack, const LbmParams& params, int device) {
  OffloadRuntime& rt = stack.omp();

  // Both lattices are initialized on the host (initial distribution).
  const VirtAddr src = rt.host_alloc(params.lattice_bytes, "lbm-src", device);
  const VirtAddr dst = rt.host_alloc(params.lattice_bytes, "lbm-dst", device);
  rt.host_first_touch(AddrRange{src, params.lattice_bytes});
  rt.host_first_touch(AddrRange{dst, params.lattice_bytes});

  HostArray<double> mass{rt, 8, "lbm-mass", device};
  mass.first_touch();

  // Large transfer at the beginning (Copy config only does real work).
  const std::vector<MapEntry> region_maps{
      MapEntry::tofrom(src, params.lattice_bytes),
      MapEntry::to(dst, params.lattice_bytes),
      MapEntry::alloc(mass.addr(), mass.bytes())};
  rt.target_data_begin(region_maps, device);

  const VirtAddr massv = mass.addr();
  for (int iter = 0; iter < params.iterations; ++iter) {
    // The target constructs carry map clauses for the lattices (present
    // on every iteration): Copy pays bookkeeping, Eager Maps a prefault
    // syscall plus a presence walk over the whole lattice.
    rt.target(TargetRegion{
        .name = "lbm_collide_stream",
        .maps = {MapEntry::alloc(src, params.lattice_bytes),
                 MapEntry::alloc(dst, params.lattice_bytes),
                 MapEntry::always_tofrom(massv, mass.bytes())},
        .compute = params.per_iter_compute,
        .body =
            [massv](hsa::KernelContext& ctx, const omp::ArgTranslator& tr) {
              ctx.ptr<double>(tr.device(massv))[0] += 1.0;
            },
        .device = device,
    });
  }
  rt.target_data_end(region_maps, device);

  const double result = mass[0];
  mass.release();
  rt.host_free(src);
  rt.host_free(dst);
  return result;
}

/// One ep shard (per-shard arena, homed on socket `device`).
double ep_shard(OffloadStack& stack, const EpParams& params, int device) {
  OffloadRuntime& rt = stack.omp();

  // The arena is allocated but never touched by the host: under Copy it
  // becomes a bulk-populated pool allocation; under zero-copy the GPU
  // first-touches it page by page inside the init kernel.
  const VirtAddr arena = rt.host_alloc(params.arena_bytes, "ep-arena", device);
  HostArray<double> counts{rt, 16, "ep-counts", device};
  counts.first_touch();
  const std::vector<MapEntry> region_maps{
      MapEntry::alloc(arena, params.arena_bytes),
      MapEntry::alloc(counts.addr(), counts.bytes())};
  rt.target_data_begin(region_maps, device);

  // GPU-side first-touch initialization of the whole arena.
  rt.target(TargetRegion{
      .name = "ep_init",
      .maps = {},
      .uses = {BufferUse{arena, params.arena_bytes, hsa::Access::Write}},
      .compute = sim::Duration::from_us(12000),
      .body = {},
      .device = device,
  });

  const VirtAddr cv = counts.addr();
  for (int b = 0; b < params.batches; ++b) {
    rt.target(TargetRegion{
        .name = "ep_gaussian_batch",
        .maps = {MapEntry::always_tofrom(cv, counts.bytes())},
        .uses = {BufferUse{arena, params.arena_bytes, hsa::Access::ReadWrite}},
        .compute = params.per_batch_compute,
        .body =
            [cv](hsa::KernelContext& ctx, const omp::ArgTranslator& tr) {
              ctx.ptr<double>(tr.device(cv))[0] += 2.0;
            },
        .device = device,
    });
  }
  rt.target_data_end(region_maps, device);

  const double result = counts[0];
  counts.release();
  rt.host_free(arena);
  return result;
}

/// Common body for the spC/bt pattern: per cycle, fresh host "stack"
/// arrays are initialized, mapped tofrom, run through `kernels` target
/// regions, unmapped (device-to-host copy), and freed. `device` homes the
/// arrays and receives the dispatches (0 in the classic single-APU run).
double run_alloc_cycle_benchmark(OffloadStack& stack, std::uint64_t array_bytes,
                                 int cycles, int kernels_per_cycle,
                                 sim::Duration per_kernel,
                                 sim::Duration big_kernel,
                                 const std::string& label, int device) {
  OffloadRuntime& rt = stack.omp();
  double checksum = 0.0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Stack allocation in the host function: fresh addresses every call,
    // so the GPU page table never has these pages (zero-copy configs fault
    // or prefault them anew each cycle).
    const VirtAddr a = rt.host_alloc(array_bytes, label + "-a", device);
    const VirtAddr b = rt.host_alloc(array_bytes, label + "-b", device);
    rt.host_first_touch(AddrRange{a, array_bytes});
    rt.host_first_touch(AddrRange{b, array_bytes});

    HostArray<double> norm{rt, 8, label + "-norm", device};

    const std::vector<MapEntry> cycle_maps{
        MapEntry::tofrom(a, array_bytes), MapEntry::tofrom(b, array_bytes),
        MapEntry::alloc(norm.addr(), norm.bytes())};
    rt.target_data_begin(cycle_maps, device);

    const VirtAddr nv = norm.addr();
    for (int k = 0; k < kernels_per_cycle; ++k) {
      const bool dominant = k == 0 && !big_kernel.is_zero();
      rt.target(TargetRegion{
          .name = label + "_solve",
          .maps = {MapEntry::always_tofrom(nv, norm.bytes())},
          .uses = {BufferUse{a, array_bytes, hsa::Access::ReadWrite},
                   BufferUse{b, array_bytes, hsa::Access::Read}},
          .compute = dominant ? big_kernel : per_kernel,
          .body =
              [nv](hsa::KernelContext& ctx, const omp::ArgTranslator& tr) {
                ctx.ptr<double>(tr.device(nv))[0] += 1.0;
              },
          .device = device,
      });
    }
    rt.target_data_end(cycle_maps, device);
    checksum += norm[0];

    norm.release();
    rt.host_free(a);
    rt.host_free(b);
  }
  return checksum;
}

/// Per-shard compute: the kernel time shrinks with the shard (perfect
/// strong scaling of the compute phase); only applied when devices > 1 so
/// the single-APU runs replay the historical schedule exactly.
sim::Duration shard_compute(sim::Duration whole, int devices) {
  return devices > 1 ? whole * (1.0 / devices) : whole;
}

std::uint64_t shard_bytes(std::uint64_t whole, int devices) {
  return devices > 1 ? whole / static_cast<std::uint64_t>(devices) : whole;
}

}  // namespace

Program make_stencil(const StencilParams& params) {
  StencilParams shard = params;
  shard.grid_bytes = shard_bytes(params.grid_bytes, params.devices);
  shard.per_iter_compute =
      shard_compute(params.per_iter_compute, params.devices);
  return sharded_program("403.stencil", params.devices,
                         [shard](OffloadStack& stack, int device) {
                           return stencil_shard(stack, shard, device);
                         });
}

Program make_lbm(const LbmParams& params) {
  LbmParams shard = params;
  shard.lattice_bytes = shard_bytes(params.lattice_bytes, params.devices);
  shard.per_iter_compute =
      shard_compute(params.per_iter_compute, params.devices);
  return sharded_program("404.lbm", params.devices,
                         [shard](OffloadStack& stack, int device) {
                           return lbm_shard(stack, shard, device);
                         });
}

Program make_ep(const EpParams& params) {
  EpParams shard = params;
  shard.arena_bytes = shard_bytes(params.arena_bytes, params.devices);
  shard.per_batch_compute =
      shard_compute(params.per_batch_compute, params.devices);
  return sharded_program("452.ep", params.devices,
                         [shard](OffloadStack& stack, int device) {
                           return ep_shard(stack, shard, device);
                         });
}

Program make_spc(const SpcParams& params) {
  SpcParams shard = params;
  shard.array_bytes = shard_bytes(params.array_bytes, params.devices);
  shard.per_kernel_compute =
      shard_compute(params.per_kernel_compute, params.devices);
  return sharded_program("457.spC", params.devices,
                         [shard](OffloadStack& stack, int device) {
                           return run_alloc_cycle_benchmark(
                               stack, shard.array_bytes, shard.cycles,
                               shard.kernels_per_cycle,
                               shard.per_kernel_compute, sim::Duration::zero(),
                               "spc", device);
                         });
}

Program make_bt(const BtParams& params) {
  BtParams shard = params;
  shard.array_bytes = shard_bytes(params.array_bytes, params.devices);
  shard.per_kernel_compute =
      shard_compute(params.per_kernel_compute, params.devices);
  shard.big_kernel_compute =
      shard_compute(params.big_kernel_compute, params.devices);
  return sharded_program("470.bt", params.devices,
                         [shard](OffloadStack& stack, int device) {
                           return run_alloc_cycle_benchmark(
                               stack, shard.array_bytes, shard.cycles,
                               shard.kernels_per_cycle,
                               shard.per_kernel_compute,
                               shard.big_kernel_compute, "bt", device);
                         });
}

std::vector<SpecBenchmark> make_spec_suite() {
  std::vector<SpecBenchmark> suite;
  suite.push_back({"stencil", make_stencil({})});
  suite.push_back({"lbm", make_lbm({})});
  suite.push_back({"ep", make_ep({})});
  suite.push_back({"spC", make_spc({})});
  suite.push_back({"bt", make_bt({})});
  return suite;
}

}  // namespace zc::workloads
