#include "zc/workloads/service_jobs.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "zc/core/host_array.hpp"

namespace zc::workloads {

using mem::VirtAddr;
using omp::BufferUse;
using omp::HostArray;
using omp::MapEntry;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::TargetRegion;

namespace {

/// Same deterministic hash the workloads use (qmcpack.cpp); duplicated
/// here because it is an implementation detail of each workload's
/// functional arithmetic, not a shared API.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
                    c * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  x *= 0xd6e8feb86659fd93ULL;
  x ^= x >> 29;
  return x;
}

std::uint64_t job_seed(const ServiceJobSpec& spec) {
  return mix(static_cast<std::uint64_t>(spec.tenant), spec.id,
             static_cast<std::uint64_t>(spec.flavor));
}

/// Functional cell value for kernel `k`, element `i`. Small exact
/// multiples of 1e-6 summed over a prefix of <= 64 elements in index
/// order: the same arithmetic in the same order is bit-identical whether
/// it runs in a kernel body or in `service_job_checksum`.
double val(std::uint64_t seed, std::uint64_t k, std::uint64_t i) {
  return 1e-6 * static_cast<double>(mix(seed, k, i) % 1024);
}

struct Shape {
  std::size_t doubles = 0;     ///< elements per working-set array
  std::size_t functional = 0;  ///< prefix the kernels actually compute on
};

Shape shape_of(const ServiceJobSpec& spec, std::uint64_t page_bytes) {
  Shape s;
  s.doubles = static_cast<std::size_t>(spec.pages * page_bytes /
                                       sizeof(double));
  s.functional = std::min<std::size_t>(s.doubles, 64);
  return s;
}

std::string job_tag(const ServiceJobSpec& spec) {
  return "t" + std::to_string(spec.tenant) + "j" + std::to_string(spec.id);
}

/// Persistent arrays + kernel burst (map traffic only at the edges). The
/// kernel bodies *assign* rather than accumulate: a watchdog replay of an
/// aborted kernel then re-derives the same cells instead of doubling them.
double run_compute(OffloadStack& stack, const ServiceJobSpec& spec,
                   const Shape& sh) {
  OffloadRuntime& rt = stack.omp();
  const std::uint64_t seed = job_seed(spec);
  HostArray<double> data{rt, sh.doubles, "svc-data-" + job_tag(spec),
                         spec.device};
  HostArray<double> out{rt, std::max<std::size_t>(sh.functional, 1),
                        "svc-out-" + job_tag(spec), spec.device};
  for (std::size_t i = 0; i < sh.functional; ++i) {
    data[i] = val(seed, 0, i);
    out[i] = 0.0;
  }
  data.first_touch();
  out.first_touch();

  const std::vector<MapEntry> persistent{data.tofrom(), out.tofrom()};
  rt.target_data_begin(persistent, spec.device);
  const VirtAddr datav = data.addr();
  const VirtAddr outv = out.addr();
  const std::size_t functional = sh.functional;
  try {
    for (int k = 0; k < spec.kernels; ++k) {
      rt.target(TargetRegion{
          .name = "svc_compute",
          .maps = {data.always_tofrom(), out.always_tofrom()},
          .compute = spec.kernel_compute,
          .body =
              [datav, outv, functional, seed, k](
                  hsa::KernelContext& kc, const omp::ArgTranslator& tr) {
                double* d = kc.ptr<double>(tr.device(datav));
                double* o = kc.ptr<double>(tr.device(outv));
                const auto ku = static_cast<std::uint64_t>(k);
                for (std::size_t i = 0; i < functional; ++i) {
                  d[i] = val(seed, ku, i);
                  o[i] = d[i] + val(seed, ku, i + 64);
                }
              },
          .device = spec.device,
      });
    }
  } catch (...) {
    // Best-effort unmap so a failed job does not pin device storage for
    // the rest of the service run (Copy-managed configurations allocate
    // pool memory per map). A data-end that itself fails is swallowed —
    // the original error is the one the service reports.
    try {
      rt.target_data_end(persistent, spec.device);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    throw;
  }
  rt.target_data_end(persistent, spec.device);

  double acc = 0.0;
  for (std::size_t i = 0; i < sh.functional; ++i) {
    acc += out[i];
  }
  data.release();
  out.release();
  return acc;
}

/// Fresh bulk buffer mapped and swept per kernel (the mapping-path
/// stressor). Nothing persists between kernels, so the error path needs
/// no unmap — HostArray reclaims on unwind.
double run_stream(OffloadStack& stack, const ServiceJobSpec& spec,
                  const Shape& sh) {
  OffloadRuntime& rt = stack.omp();
  const std::uint64_t seed = job_seed(spec);
  const std::size_t functional = sh.functional;
  double acc = 0.0;
  for (int k = 0; k < spec.kernels; ++k) {
    HostArray<double> scratch{
        rt, sh.doubles,
        "svc-stream-" + job_tag(spec) + "k" + std::to_string(k), spec.device};
    for (std::size_t i = 0; i < functional; ++i) {
      scratch[i] = 0.0;
    }
    scratch.first_touch();
    const VirtAddr sv = scratch.addr();
    rt.target(TargetRegion{
        .name = "svc_stream",
        .maps = {scratch.always_tofrom()},
        .compute = spec.kernel_compute,
        .body =
            [sv, functional, seed, k](hsa::KernelContext& kc,
                                      const omp::ArgTranslator& tr) {
              double* s = kc.ptr<double>(tr.device(sv));
              const auto ku = static_cast<std::uint64_t>(k);
              for (std::size_t i = 0; i < functional; ++i) {
                s[i] = val(seed, ku, i);
              }
            },
        .device = spec.device,
    });
    for (std::size_t i = 0; i < functional; ++i) {
      acc += scratch[i];
    }
    scratch.release();
  }
  return acc;
}

/// Explicit staging buffer fed by `omp_target_memcpy` — the only flavor
/// whose steady state crosses the SDMA engines under Implicit Zero-Copy
/// (stage-in before the kernels, stage-out after). The pool buffer is
/// freed on the error path too: a hung tenant must not leak HBM into its
/// neighbours' admission budget.
double run_staged(OffloadStack& stack, const ServiceJobSpec& spec,
                  const Shape& sh) {
  OffloadRuntime& rt = stack.omp();
  const std::uint64_t seed = job_seed(spec);
  const std::uint64_t bytes = sh.doubles * sizeof(double);
  const std::size_t functional = sh.functional;

  HostArray<double> src{rt, sh.doubles, "svc-src-" + job_tag(spec),
                        spec.device};
  HostArray<double> result{rt, std::max<std::size_t>(sh.functional, 1),
                           "svc-result-" + job_tag(spec), spec.device};
  for (std::size_t i = 0; i < functional; ++i) {
    src[i] = val(seed, 0, i);
    result[i] = 0.0;
  }
  src.first_touch();
  result.first_touch();

  const VirtAddr dev =
      rt.device_alloc(bytes, "svc-stage-" + job_tag(spec), spec.device);
  double acc = 0.0;
  try {
    rt.target_memcpy(dev, src.addr(), bytes);  // stage in (SDMA)
    const VirtAddr resultv = result.addr();
    for (int k = 0; k < spec.kernels; ++k) {
      rt.target(TargetRegion{
          .name = "svc_staged",
          .maps = {result.always_tofrom()},
          .uses = {BufferUse{dev, bytes, hsa::Access::Read}},
          .compute = spec.kernel_compute,
          .body =
              [resultv, functional, seed, k](hsa::KernelContext& kc,
                                             const omp::ArgTranslator& tr) {
                double* r = kc.ptr<double>(tr.device(resultv));
                const auto ku = static_cast<std::uint64_t>(k);
                for (std::size_t i = 0; i < functional; ++i) {
                  r[i] = val(seed, ku, i);
                }
              },
          .device = spec.device,
      });
    }
    rt.target_memcpy(src.addr(), dev, bytes);  // stage out (SDMA)
    for (std::size_t i = 0; i < functional; ++i) {
      acc += result[i];
    }
  } catch (...) {
    rt.device_free(dev);
    throw;
  }
  rt.device_free(dev);
  src.release();
  result.release();
  return acc;
}

}  // namespace

std::uint64_t job_footprint_bytes(const ServiceJobSpec& spec,
                                  std::uint64_t page_bytes) {
  // Worst case over the configurations, counting BOTH sides of the APU's
  // single physical HBM: the host working set itself, plus the same bytes
  // again for what lives in the device pool at peak (Copy-managed map
  // copies, or Staged's explicit staging buffer). One extra page per side
  // covers the small out/result array. Charging the union keeps admission
  // sound on capped sockets where `device_alloc` would otherwise be able
  // to exhaust the pool mid-job.
  switch (spec.flavor) {
    case JobFlavor::Compute:
    case JobFlavor::Staged:
      return 2 * (spec.pages + 1) * page_bytes;
    case JobFlavor::Stream:
      return 2 * spec.pages * page_bytes;
  }
  return 2 * spec.pages * page_bytes;
}

double service_job_checksum(const ServiceJobSpec& spec,
                            std::uint64_t page_bytes) {
  const Shape sh = shape_of(spec, page_bytes);
  const std::uint64_t seed = job_seed(spec);
  const auto last = static_cast<std::uint64_t>(
      spec.kernels > 0 ? spec.kernels - 1 : 0);
  double acc = 0.0;
  switch (spec.flavor) {
    case JobFlavor::Compute:
      // Kernels assign; the checksum reads the last kernel's cells.
      if (spec.kernels > 0) {
        for (std::size_t i = 0; i < sh.functional; ++i) {
          acc += val(seed, last, i) + val(seed, last, i + 64);
        }
      }
      return acc;
    case JobFlavor::Stream:
      for (int k = 0; k < spec.kernels; ++k) {
        for (std::size_t i = 0; i < sh.functional; ++i) {
          acc += val(seed, static_cast<std::uint64_t>(k), i);
        }
      }
      return acc;
    case JobFlavor::Staged:
      if (spec.kernels > 0) {
        for (std::size_t i = 0; i < sh.functional; ++i) {
          acc += val(seed, last, i);
        }
      }
      return acc;
  }
  return acc;
}

double run_service_job(OffloadStack& stack, const ServiceJobSpec& spec) {
  const Shape sh = shape_of(spec, stack.machine().page_bytes());
  switch (spec.flavor) {
    case JobFlavor::Compute:
      return run_compute(stack, spec, sh);
    case JobFlavor::Stream:
      return run_stream(stack, spec, sh);
    case JobFlavor::Staged:
      return run_staged(stack, spec, sh);
  }
  return 0.0;
}

}  // namespace zc::workloads
