#include "zc/mem/tlb.hpp"

#include <algorithm>
#include <stdexcept>

namespace zc::mem {

namespace {
/// splitmix64 finalizer: page indices are often small and sequential, so
/// they need real mixing before masking down to a table position.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

Tlb::Tlb(std::uint32_t capacity, std::uint64_t page_bytes)
    : capacity_{capacity}, page_bytes_{page_bytes} {
  if (capacity_ == 0) {
    throw std::invalid_argument("Tlb: capacity must be positive");
  }
  if (page_bytes_ == 0 || (page_bytes_ & (page_bytes_ - 1)) != 0) {
    throw std::invalid_argument("Tlb: page size must be a power of two");
  }
  slots_.resize(capacity_);
  // Keep the load factor at or below 1/2 so linear probes stay short.
  std::uint64_t table = 4;
  while (table < 2ull * capacity_) {
    table *= 2;
  }
  table_.assign(static_cast<std::size_t>(table), 0);
  mask_ = static_cast<std::uint32_t>(table - 1);
}

std::uint32_t Tlb::home(std::uint64_t page) const {
  return static_cast<std::uint32_t>(mix(page)) & mask_;
}

std::uint32_t Tlb::find_pos(std::uint64_t page) const {
  std::uint32_t pos = home(page);
  while (true) {
    const std::uint32_t e = table_[pos];
    if (e == 0) {
      return kNil;
    }
    if (slots_[e - 1].page == page) {
      return pos;
    }
    pos = (pos + 1) & mask_;
  }
}

void Tlb::table_erase(std::uint32_t pos) {
  // Backward-shift deletion: pull later probe-chain entries into the hole
  // so lookups never need tombstones. An entry at j may fill the hole at
  // pos iff its home position is not cyclically inside (pos, j].
  std::uint32_t j = pos;
  while (true) {
    table_[pos] = 0;
    while (true) {
      j = (j + 1) & mask_;
      const std::uint32_t e = table_[j];
      if (e == 0) {
        return;
      }
      const std::uint32_t h = home(slots_[e - 1].page);
      if (((j - h) & mask_) >= ((j - pos) & mask_)) {
        table_[pos] = e;
        pos = j;
        break;
      }
    }
  }
}

void Tlb::unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
}

void Tlb::link_front(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.prev = kNil;
  s.next = head_;
  if (head_ != kNil) {
    slots_[head_].prev = slot;
  }
  head_ = slot;
  if (tail_ == kNil) {
    tail_ = slot;
  }
}

void Tlb::insert_new(std::uint64_t page) {
  std::uint32_t slot;
  if (free_ != kNil) {
    slot = free_;
    free_ = slots_[slot].next;
  } else if (used_slots_ < capacity_) {
    slot = used_slots_++;
  } else {
    // Evict the least recently used translation and reuse its slot.
    slot = tail_;
    table_erase(find_pos(slots_[slot].page));
    unlink(slot);
    --count_;
  }
  slots_[slot].page = page;
  link_front(slot);
  std::uint32_t pos = home(page);
  while (table_[pos] != 0) {
    pos = (pos + 1) & mask_;
  }
  table_[pos] = slot + 1;
  ++count_;
}

bool Tlb::access(std::uint64_t page_index) {
  const std::uint32_t pos = find_pos(page_index);
  if (pos != kNil) {
    const std::uint32_t slot = table_[pos] - 1;
    if (head_ != slot) {
      unlink(slot);
      link_front(slot);
    }
    ++hits_;
    return true;
  }
  ++misses_;
  insert_new(page_index);
  return false;
}

TlbAccessResult Tlb::access_range(AddrRange range) {
  TlbAccessResult r;
  const std::uint64_t first = range.first_page(page_bytes_);
  const std::uint64_t end = range.end_page(page_bytes_);
  // Fast path: a sequential stream at least as large as the TLB thrashes
  // completely under LRU — every access misses and the TLB ends up holding
  // the last `capacity` pages. Model that directly instead of walking
  // millions of pages.
  if (end - first > capacity_) {
    r.misses = end - first;
    misses_ += r.misses;
    invalidate_all();
    for (std::uint64_t p = end - capacity_; p < end; ++p) {
      insert_new(p);
    }
    return r;
  }
  for (std::uint64_t p = first; p < end; ++p) {
    if (access(p)) {
      ++r.hits;
    } else {
      ++r.misses;
    }
  }
  return r;
}

void Tlb::invalidate_range(AddrRange range) {
  if (count_ == 0) {
    return;
  }
  const std::uint64_t first = range.first_page(page_bytes_);
  const std::uint64_t end = range.end_page(page_bytes_);
  if (end - first < count_) {
    // Narrow range: probe each page individually.
    for (std::uint64_t p = first; p < end; ++p) {
      const std::uint32_t pos = find_pos(p);
      if (pos == kNil) {
        continue;
      }
      const std::uint32_t slot = table_[pos] - 1;
      table_erase(pos);
      unlink(slot);
      slots_[slot].next = free_;
      free_ = slot;
      --count_;
    }
    return;
  }
  // Wide range: walk the resident set once instead of probing per page.
  std::uint32_t slot = head_;
  while (slot != kNil) {
    const std::uint32_t next = slots_[slot].next;
    const std::uint64_t p = slots_[slot].page;
    if (p >= first && p < end) {
      table_erase(find_pos(p));
      unlink(slot);
      slots_[slot].next = free_;
      free_ = slot;
      --count_;
    }
    slot = next;
  }
}

void Tlb::invalidate_all() {
  std::fill(table_.begin(), table_.end(), 0u);
  head_ = kNil;
  tail_ = kNil;
  free_ = kNil;
  used_slots_ = 0;
  count_ = 0;
}

}  // namespace zc::mem
