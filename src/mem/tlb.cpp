#include "zc/mem/tlb.hpp"

#include <stdexcept>

namespace zc::mem {

Tlb::Tlb(std::uint32_t capacity, std::uint64_t page_bytes)
    : capacity_{capacity}, page_bytes_{page_bytes} {
  if (capacity_ == 0) {
    throw std::invalid_argument("Tlb: capacity must be positive");
  }
  if (page_bytes_ == 0 || (page_bytes_ & (page_bytes_ - 1)) != 0) {
    throw std::invalid_argument("Tlb: page size must be a power of two");
  }
}

bool Tlb::access(std::uint64_t page_index) {
  auto it = map_.find(page_index);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(page_index);
  map_.emplace(page_index, lru_.begin());
  return false;
}

TlbAccessResult Tlb::access_range(AddrRange range) {
  TlbAccessResult r;
  const std::uint64_t first = range.first_page(page_bytes_);
  const std::uint64_t end = range.end_page(page_bytes_);
  // Fast path: a sequential stream at least as large as the TLB thrashes
  // completely under LRU — every access misses and the TLB ends up holding
  // the last `capacity` pages. Model that directly instead of walking
  // millions of pages.
  if (end - first > capacity_) {
    r.misses = end - first;
    misses_ += r.misses;
    invalidate_all();
    for (std::uint64_t p = end - capacity_; p < end; ++p) {
      lru_.push_front(p);
      map_.emplace(p, lru_.begin());
    }
    return r;
  }
  for (std::uint64_t p = first; p < end; ++p) {
    if (access(p)) {
      ++r.hits;
    } else {
      ++r.misses;
    }
  }
  return r;
}

void Tlb::invalidate_range(AddrRange range) {
  const std::uint64_t end = range.end_page(page_bytes_);
  for (std::uint64_t p = range.first_page(page_bytes_); p < end; ++p) {
    auto it = map_.find(p);
    if (it != map_.end()) {
      lru_.erase(it->second);
      map_.erase(it);
    }
  }
}

void Tlb::invalidate_all() {
  lru_.clear();
  map_.clear();
}

}  // namespace zc::mem
