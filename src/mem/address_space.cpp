#include "zc/mem/address_space.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace zc::mem {

std::string VirtAddr::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

Allocation::Allocation(VirtAddr base, std::uint64_t bytes, MemKind kind,
                       std::string name)
    : base_{base}, bytes_{bytes}, kind_{kind}, name_{std::move(name)} {}

void Allocation::ensure_backing() {
  if (backing_ == nullptr) {
    backing_.reset(new std::byte[bytes_]());
  }
}

std::uint64_t Allocation::remote_pages(AddrRange range, int socket,
                                       std::uint64_t page_bytes) const {
  if (home_pending()) {
    return 0;
  }
  // Clamp to this allocation before counting.
  const std::uint64_t lo =
      range.base.value < base_.value ? base_.value : range.base.value;
  const std::uint64_t alloc_end = base_.value + bytes_;
  std::uint64_t hi = range.base.value + range.bytes;
  hi = hi > alloc_end ? alloc_end : hi;
  if (lo >= hi) {
    return 0;
  }
  const std::uint64_t first = lo / page_bytes;
  const std::uint64_t end = (hi + page_bytes - 1) / page_bytes;
  const std::uint64_t total = end - first;
  const std::uint64_t origin = base_.value / page_bytes;
  // Closed form first; partial-migration overrides (rare) adjust it below.
  std::uint64_t remote = 0;
  if (placement_ != Placement::Interleaved) {
    remote = home_socket_ == socket ? 0 : total;
  } else {
    const std::uint64_t k = static_cast<std::uint64_t>(placement_sockets_);
    if (socket < 0 || static_cast<std::uint64_t>(socket) >= k) {
      remote = total;
    } else {
      // Count pages of [first, end) whose stripe residue equals `socket`,
      // where residues are relative to the allocation's first page.
      const std::uint64_t r = static_cast<std::uint64_t>(socket);
      auto locals_below = [&](std::uint64_t page) {
        const std::uint64_t rel = page - origin;  // page >= origin by clamping
        return rel > r ? (rel - r + k - 1) / k : 0;
      };
      remote = total - (locals_below(end) - locals_below(first));
    }
  }
  if (!home_overrides_.empty()) {
    auto it = home_overrides_.lower_bound(first - origin);
    const std::uint64_t rel_end = end - origin;
    for (; it != home_overrides_.end() && it->first < rel_end; ++it) {
      const bool policy_local = policy_home(it->first) == socket;
      const bool actual_local = it->second == socket;
      if (policy_local && !actual_local) {
        ++remote;
      } else if (!policy_local && actual_local) {
        --remote;
      }
    }
  }
  return remote;
}

std::byte* Allocation::translate(VirtAddr a) {
  if (!range().contains(a)) {
    throw std::out_of_range("Allocation::translate: address " + a.to_string() +
                            " outside allocation '" + name_ + "'");
  }
  ensure_backing();
  return backing_.get() + (a - base_);
}

AddressSpace::AddressSpace(std::uint64_t page_bytes) : page_bytes_{page_bytes} {
  if (page_bytes_ == 0 || (page_bytes_ & (page_bytes_ - 1)) != 0) {
    throw std::invalid_argument("AddressSpace: page size must be a power of two");
  }
  next_ = page_bytes_;  // keep address 0 unmapped so VirtAddr::null stays invalid
}

Allocation& AddressSpace::allocate(std::uint64_t bytes, MemKind kind,
                                   std::string name) {
  if (bytes == 0) {
    throw std::invalid_argument("AddressSpace::allocate: zero-byte allocation");
  }
  const VirtAddr base{next_};
  const std::uint64_t span = (bytes + page_bytes_ - 1) / page_bytes_ * page_bytes_;
  next_ += span + page_bytes_;  // one guard page between allocations
  auto alloc =
      std::make_unique<Allocation>(base, bytes, kind, std::move(name));
  Allocation& ref = *alloc;
  // Bump allocation: `base` is strictly larger than every existing key,
  // so hinting at end() makes the tree insert amortized O(1).
  allocs_.emplace_hint(allocs_.end(), base.value, std::move(alloc));
  live_bytes_ += bytes;
  total_bytes_ += bytes;
  return ref;
}

void AddressSpace::free(VirtAddr base) {
  auto it = allocs_.find(base.value);
  if (it == allocs_.end()) {
    throw std::invalid_argument("AddressSpace::free: unknown base " +
                                base.to_string());
  }
  for (FindSlot& slot : find_cache_) {
    if (slot.alloc == it->second.get()) {
      slot = FindSlot{};
    }
  }
  live_bytes_ -= it->second->bytes();
  allocs_.erase(it);
}

Allocation* AddressSpace::find(VirtAddr a) {
  const std::uint64_t v = a.value;
  for (std::size_t i = 0; i < kFindCacheSlots; ++i) {
    const FindSlot s = find_cache_[i];
    if (v >= s.base && v < s.end) {
      if (i > 0) {
        // Transpose one step toward the front: O(1), and hot buffers
        // still converge to the first probes.
        std::swap(find_cache_[i], find_cache_[i - 1]);
      }
      return s.alloc;
    }
  }
  if (allocs_.empty()) {
    return nullptr;
  }
  auto it = allocs_.upper_bound(v);
  if (it == allocs_.begin()) {
    return nullptr;
  }
  --it;
  Allocation* alloc = it->second.get();
  if (!alloc->range().contains(a)) {
    return nullptr;
  }
  for (std::size_t j = kFindCacheSlots - 1; j > 0; --j) {
    find_cache_[j] = find_cache_[j - 1];
  }
  find_cache_[0] =
      FindSlot{alloc->base().value, alloc->base().value + alloc->bytes(), alloc};
  return alloc;
}

const Allocation* AddressSpace::find(VirtAddr a) const {
  return const_cast<AddressSpace*>(this)->find(a);
}

std::byte* AddressSpace::translate(VirtAddr a) {
  Allocation* alloc = find(a);
  if (alloc == nullptr) {
    throw std::out_of_range("AddressSpace::translate: unmapped address " +
                            a.to_string());
  }
  return alloc->translate(a);
}

}  // namespace zc::mem
