#include "zc/mem/address_space.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace zc::mem {

std::string VirtAddr::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

Allocation::Allocation(VirtAddr base, std::uint64_t bytes, MemKind kind,
                       std::string name)
    : base_{base}, bytes_{bytes}, kind_{kind}, name_{std::move(name)} {}

void Allocation::ensure_backing() {
  if (backing_ == nullptr) {
    backing_.reset(new std::byte[bytes_]());
  }
}

std::byte* Allocation::translate(VirtAddr a) {
  if (!range().contains(a)) {
    throw std::out_of_range("Allocation::translate: address " + a.to_string() +
                            " outside allocation '" + name_ + "'");
  }
  ensure_backing();
  return backing_.get() + (a - base_);
}

AddressSpace::AddressSpace(std::uint64_t page_bytes) : page_bytes_{page_bytes} {
  if (page_bytes_ == 0 || (page_bytes_ & (page_bytes_ - 1)) != 0) {
    throw std::invalid_argument("AddressSpace: page size must be a power of two");
  }
  next_ = page_bytes_;  // keep address 0 unmapped so VirtAddr::null stays invalid
}

Allocation& AddressSpace::allocate(std::uint64_t bytes, MemKind kind,
                                   std::string name) {
  if (bytes == 0) {
    throw std::invalid_argument("AddressSpace::allocate: zero-byte allocation");
  }
  const VirtAddr base{next_};
  const std::uint64_t span = (bytes + page_bytes_ - 1) / page_bytes_ * page_bytes_;
  next_ += span + page_bytes_;  // one guard page between allocations
  auto alloc =
      std::make_unique<Allocation>(base, bytes, kind, std::move(name));
  Allocation& ref = *alloc;
  // Bump allocation: `base` is strictly larger than every existing key,
  // so hinting at end() makes the tree insert amortized O(1).
  allocs_.emplace_hint(allocs_.end(), base.value, std::move(alloc));
  live_bytes_ += bytes;
  total_bytes_ += bytes;
  return ref;
}

void AddressSpace::free(VirtAddr base) {
  auto it = allocs_.find(base.value);
  if (it == allocs_.end()) {
    throw std::invalid_argument("AddressSpace::free: unknown base " +
                                base.to_string());
  }
  for (FindSlot& slot : find_cache_) {
    if (slot.alloc == it->second.get()) {
      slot = FindSlot{};
    }
  }
  live_bytes_ -= it->second->bytes();
  allocs_.erase(it);
}

Allocation* AddressSpace::find(VirtAddr a) {
  const std::uint64_t v = a.value;
  for (std::size_t i = 0; i < kFindCacheSlots; ++i) {
    const FindSlot s = find_cache_[i];
    if (v >= s.base && v < s.end) {
      if (i > 0) {
        // Transpose one step toward the front: O(1), and hot buffers
        // still converge to the first probes.
        std::swap(find_cache_[i], find_cache_[i - 1]);
      }
      return s.alloc;
    }
  }
  if (allocs_.empty()) {
    return nullptr;
  }
  auto it = allocs_.upper_bound(v);
  if (it == allocs_.begin()) {
    return nullptr;
  }
  --it;
  Allocation* alloc = it->second.get();
  if (!alloc->range().contains(a)) {
    return nullptr;
  }
  for (std::size_t j = kFindCacheSlots - 1; j > 0; --j) {
    find_cache_[j] = find_cache_[j - 1];
  }
  find_cache_[0] =
      FindSlot{alloc->base().value, alloc->base().value + alloc->bytes(), alloc};
  return alloc;
}

const Allocation* AddressSpace::find(VirtAddr a) const {
  return const_cast<AddressSpace*>(this)->find(a);
}

std::byte* AddressSpace::translate(VirtAddr a) {
  Allocation* alloc = find(a);
  if (alloc == nullptr) {
    throw std::out_of_range("AddressSpace::translate: unmapped address " +
                            a.to_string());
  }
  return alloc->translate(a);
}

}  // namespace zc::mem
