#include "zc/mem/memory_system.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "zc/race/api.hpp"

namespace zc::mem {

namespace {

/// Deterministic per-page hash for seeded victim tie-breaks (splitmix64).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MemorySystem::MemorySystem(apu::Machine& machine)
    : machine_{machine},
      space_{machine.page_bytes()},
      cpu_pt_{machine.page_bytes()},
      hbm_capacity_{machine.topology().hbm_bytes} {
  for (int s = 0; s < machine.sockets(); ++s) {
    gpu_pt_.emplace_back(machine.page_bytes());
    tlb_.emplace_back(machine.costs().tlb_entries, machine.page_bytes());
    hbm_used_.push_back(0);
    migrated_.push_back(0);
  }
  const apu::RunEnvironment& env = machine.env();
  sample_counters_ = env.ompx_apu_automigrate.enabled ||
                     env.ompx_apu_pressure == apu::PressureMode::Watermarks;
}

int MemorySystem::home_of(VirtAddr a) const {
  const Allocation* alloc = space_.find(a);
  return alloc != nullptr ? alloc->home_socket() : 0;
}

// The physical-occupancy counters are mutated by every allocating thread and
// by fault servicing; in a real driver the memory manager's lock orders
// them. The simulator models that lock as a race-detector monitor keyed on
// the counter vector — each counter operation is one bracketed section (the
// sections are pure state, never advancing virtual time), so the detector
// sees the ordering the mm lock provides while still checking every access.
void MemorySystem::charge(int socket, std::uint64_t bytes) {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_write(sched, &hbm_used_.at(static_cast<std::size_t>(socket)),
                 sizeof(std::uint64_t), "MemorySystem::hbm_used_");
  hbm_used_.at(static_cast<std::size_t>(socket)) += bytes;
}

void MemorySystem::credit(int socket, std::uint64_t bytes) {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_write(sched, &hbm_used_.at(static_cast<std::size_t>(socket)),
                 sizeof(std::uint64_t), "MemorySystem::hbm_used_");
  std::uint64_t& used = hbm_used_.at(static_cast<std::size_t>(socket));
  used -= std::min(used, bytes);
}

Allocation& MemorySystem::os_alloc(std::uint64_t bytes, std::string name,
                                   int home_socket) {
  Allocation& a = space_.allocate(bytes, MemKind::HostOs, std::move(name));
  a.set_home_socket(home_socket);
  return a;
}

Allocation& MemorySystem::os_alloc_placed(std::uint64_t bytes,
                                          std::string name,
                                          Placement placement,
                                          int home_socket) {
  Allocation& a = os_alloc(bytes, std::move(name), home_socket);
  a.set_placement(placement, static_cast<int>(gpu_pt_.size()));
  return a;
}

void MemorySystem::charge_alloc(Allocation& a, int socket,
                                std::uint64_t pages) {
  if (pages == 0) {
    return;
  }
  charge(socket, pages * page_bytes());
  a.hbm_resident_add(socket, pages, hbm_used_.size());
}

void MemorySystem::credit_page(Allocation& a, int socket) {
  int s = socket;
  if (a.hbm_resident(s) == 0) {
    // Per-page homes and the even-split interleaved attribution can
    // disagree page-by-page; credit wherever this allocation's charges
    // actually landed so the global sum stays exact.
    const std::vector<std::uint64_t>& v = a.hbm_resident_all();
    std::uint64_t best = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] > best) {
        best = v[i];
        s = static_cast<int>(i);
      }
    }
    if (best == 0) {
      return;  // nothing charged: nothing to credit
    }
  }
  credit(s, page_bytes());
  a.hbm_resident_sub(s, 1);
}

void MemorySystem::credit_all(Allocation& a) {
  const std::vector<std::uint64_t>& v = a.hbm_resident_all();
  for (std::size_t s = 0; s < v.size(); ++s) {
    if (v[s] > 0) {
      credit(static_cast<int>(s), v[s] * page_bytes());
    }
  }
  for (std::size_t s = 0; s < v.size(); ++s) {
    a.hbm_resident_sub(static_cast<int>(s), a.hbm_resident(static_cast<int>(s)));
  }
}

void MemorySystem::charge_created(VirtAddr addr, std::uint64_t pages) {
  if (pages == 0) {
    return;
  }
  Allocation* a = space_.find(addr);
  if (a == nullptr) {
    charge(0, pages * page_bytes());
    return;
  }
  if (a->placement() == Placement::Interleaved) {
    // Striped pages land on every socket; attribute an even split (exact
    // per-page attribution would track which pages materialized — the
    // even split keeps the counters right for whole-buffer touches, the
    // overwhelmingly common shape).
    const std::uint64_t k = hbm_used_.size();
    for (std::uint64_t s = 0; s < k; ++s) {
      const std::uint64_t share = pages / k + (s < pages % k ? 1 : 0);
      if (share > 0) {
        charge_alloc(*a, static_cast<int>(s), share);
      }
    }
    return;
  }
  charge_alloc(*a, a->home_socket(), pages);
}

void MemorySystem::ddr_charge(Allocation& a, std::uint64_t pages) {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_write(sched, &ddr_used_, sizeof(std::uint64_t),
                 "MemorySystem::ddr_used_");
  ddr_used_ += pages * page_bytes();
  a.ddr_resident_add(pages);
}

void MemorySystem::ddr_credit(Allocation& a, std::uint64_t pages) {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_write(sched, &ddr_used_, sizeof(std::uint64_t),
                 "MemorySystem::ddr_used_");
  const std::uint64_t bytes = pages * page_bytes();
  ddr_used_ -= std::min(ddr_used_, bytes);
  a.ddr_resident_sub(pages);
}

void MemorySystem::os_free(VirtAddr base) { release(base, MemKind::HostOs); }

bool MemorySystem::pool_fits(std::uint64_t bytes, int socket) const {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_read(sched, &hbm_used_.at(static_cast<std::size_t>(socket)),
                sizeof(std::uint64_t), "MemorySystem::hbm_used_");
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t footprint = (bytes + pb - 1) / pb * pb;
  return hbm_used_.at(static_cast<std::size_t>(socket)) + footprint <=
         hbm_capacity_;
}

Allocation* MemorySystem::try_pool_alloc(std::uint64_t bytes, std::string name,
                                         int socket) {
  // Pool allocations consume physical pages immediately (bulk creation),
  // so this is where the finite shared HBM store pushes back first.
  if (!pool_fits(bytes, socket)) {
    return nullptr;
  }
  Allocation& a = space_.allocate(bytes, MemKind::DevicePool, std::move(name));
  a.set_home_socket(socket);
  // Pool allocations are mapped in bulk at creation: the owning GPU can
  // translate them immediately (no XNACK), and on an APU the CPU can as
  // well, because the driver fulfilled the request from shared storage.
  gpu_pt(socket).insert_range(a.range());
  std::uint64_t created_pages = a.range().page_count(space_.page_bytes());
  a.gpu_absent_init(gpu_pt_.size(), created_pages);
  a.gpu_absent_sub(socket, created_pages);
  if (machine_.is_apu()) {
    created_pages = cpu_pt_.insert_range(a.range());
  }
  charge_alloc(a, socket, created_pages);
  return &a;
}

Allocation& MemorySystem::pool_alloc(std::uint64_t bytes, std::string name,
                                     int socket) {
  Allocation* const a = try_pool_alloc(bytes, std::move(name), socket);
  if (a == nullptr) {
    throw std::runtime_error(
        "MemorySystem: socket " + std::to_string(socket) +
        " HBM exhausted (" + std::to_string(hbm_used(socket)) + " of " +
        std::to_string(hbm_capacity_) + " bytes used, pool request " +
        std::to_string(bytes) + ")");
  }
  return *a;
}

void MemorySystem::pool_free(VirtAddr base) {
  release(base, MemKind::DevicePool);
}

void MemorySystem::release(VirtAddr base, MemKind expected) {
  Allocation* a = space_.find(base);
  if (a == nullptr || a->base() != base) {
    throw std::invalid_argument("MemorySystem: free of unknown base " +
                                base.to_string());
  }
  if (a->kind() != expected) {
    throw std::invalid_argument(std::string{"MemorySystem: free of "} +
                                to_string(a->kind()) + " allocation '" +
                                a->name() + "' via " + to_string(expected) +
                                " API");
  }
  const AddrRange range = a->range();
  // Credit exactly the residency this allocation was charged: the per-
  // socket attribution vector (plus any DDR spill), maintained by every
  // charge path, so capacity accounting cannot drift no matter how the
  // pages migrated or spilled in between. On a discrete node only pool
  // (VRAM) allocations charged.
  if (machine_.is_apu()) {
    credit_all(*a);
    if (a->ddr_resident() > 0) {
      ddr_credit(*a, a->ddr_resident());
    }
  } else if (a->kind() == MemKind::DevicePool) {
    credit(a->home_socket(), range.page_count(page_bytes()) * page_bytes());
  }
  // Drop per-page pressure state covering the freed range so stale
  // entries can never select a dead page as a victim or candidate.
  const std::uint64_t pb = page_bytes();
  const std::uint64_t first = range.first_page(pb);
  const std::uint64_t end = range.end_page(pb);
  ddr_pages_.erase(ddr_pages_.lower_bound(first), ddr_pages_.lower_bound(end));
  split_spans_.erase(split_spans_.lower_bound(first),
                     split_spans_.lower_bound(end));
  heat_.erase(heat_.lower_bound(first), heat_.lower_bound(end));
  cpu_pt_.remove_range(range);
  for (std::size_t s = 0; s < gpu_pt_.size(); ++s) {
    gpu_pt_[s].remove_range(range);
    tlb_[s].invalidate_range(range);
  }
  space_.free(base);
  maybe_check_accounting();
}

std::uint64_t MemorySystem::host_touch(AddrRange range, int toucher_socket) {
  // Page-granularity race check: a host touch is a host-side write of every
  // page in the range. Under zero-copy these are the same physical pages a
  // kernel accesses, so a touch during an in-flight kernel with no
  // interposed completion edge is exactly the unified-memory data race the
  // detector exists to flag.
  if (sim::ConcurrencyHooks* h = machine_.sched().hooks()) {
    const Allocation* a = space_.find(range.base);
    const std::string site =
        "host_touch('" + (a != nullptr ? a->name() : std::string{"?"}) + "')";
    const std::uint64_t pb = page_bytes();
    h->on_host_pages(range.first_page(pb),
                     range.end_page(pb) - range.first_page(pb),
                     /*is_write=*/true, site);
  }
  if (Allocation* a = space_.find(range.base);
      a != nullptr && a->home_pending()) {
    a->resolve_home(toucher_socket);
  }
  const std::uint64_t created = cpu_pt_.insert_range(range);
  if (machine_.is_apu() && created > 0) {
    charge_created(range.base, created);
  }
  note_touch(range, toucher_socket);
  return created;
}

void MemorySystem::note_touch(AddrRange range, int socket) {
  if (!sample_counters_ || !machine_.is_apu()) {
    return;
  }
  Allocation* a = space_.find(range.base);
  if (a == nullptr || a->kind() != MemKind::HostOs || a->home_pending()) {
    return;
  }
  const std::uint64_t pb = page_bytes();
  const std::uint64_t first = range.first_page(pb);
  const std::uint64_t end = range.end_page(pb);
  // Bounded access-counter shadow, like the hardware's: overflow drops
  // the oldest state wholesale (the driver re-learns, deterministic).
  if (heat_.size() > 65536) {
    heat_.clear();
  }
  for (std::uint64_t p = first; p < end; ++p) {
    const VirtAddr addr{p * pb};
    const int home = a->page_home(addr, pb);
    if (home == socket) {
      // A home-local touch cools the page: the streak that justifies a
      // migration must be uncontested.
      if (auto it = heat_.find(p); it != heat_.end()) {
        heat_.erase(it);
      }
      continue;
    }
    Heat& h = heat_[p];
    if (h.count == 0 || h.socket != socket) {
      h.socket = socket;
      h.count = 1;
    } else {
      ++h.count;
    }
    h.epoch = ++heat_epoch_;
  }
}

std::uint64_t MemorySystem::gpu_absent_pages(AddrRange range,
                                             int socket) const {
  return gpu_pt_.at(static_cast<std::size_t>(socket)).count_absent(range);
}

std::uint64_t MemorySystem::gpu_absent_pages(AddrRange range, int socket,
                                             Allocation* hint) const {
  // A fully-mapped summary answers any subrange O(1); GPU translations
  // are only ever removed by release(), which frees the allocation
  // itself, so a zero counter can never go stale.
  if (hint != nullptr && hint->gpu_fully_mapped(socket)) {
    return 0;
  }
  return gpu_pt_.at(static_cast<std::size_t>(socket)).count_absent(range);
}

std::uint64_t MemorySystem::cpu_resident_pages(AddrRange range) const {
  return cpu_pt_.count_present(range);
}

FaultOutcome MemorySystem::gpu_fault_in(AddrRange range, int socket) {
  // The XNACK-replay walk materializes the host page if needed (the
  // expensive demand path), then inserts the translation into the GPU page
  // table. A GPU-side first touch homes the pages on the faulting socket
  // (the paper's first-touch lesson: the device that materializes owns).
  if (Allocation* a = space_.find(range.base);
      a != nullptr && a->home_pending()) {
    a->resolve_home(socket);
  }
  FaultOutcome out;
  PageTable& pt = gpu_pt(socket);
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t first = range.first_page(pb);
  const std::uint64_t end = range.end_page(pb);
  const bool track_pressure = !ddr_pages_.empty() || !split_spans_.empty();
  // Pages the GPU cannot yet translate fault; of those, pages the host
  // never materialized are additionally created (GPU-side first touch).
  // Walking the absent *runs* gives the same counts as the page loop in
  // O(runs), and only gpu-absent pages reach the host table — a page
  // already GPU-mapped never re-touches host state.
  pt.for_each_absent_run(first, end, [&](std::uint64_t a, std::uint64_t b) {
    out.faulted += b - a;
    out.non_resident += cpu_pt_.insert_pages(a, b);
    if (track_pressure) {
      out.split_faulted += static_cast<std::uint64_t>(std::distance(
          split_spans_.lower_bound(a), split_spans_.lower_bound(b)));
    }
  });
  pt.insert_pages(first, end);
  update_residency_summary(range, socket, out.faulted);
  if (machine_.is_apu() && out.non_resident > 0) {
    charge_created(range.base, out.non_resident);
  }
  // A GPU access to a DDR-spilled page promotes it back to HBM: the data
  // must return to the fast tier before the translation is useful.
  if (track_pressure && machine_.is_apu()) {
    if (Allocation* a = space_.find(range.base); a != nullptr) {
      out.promoted = promote_range(*a, first, end);
    }
  }
  note_touch(range, socket);
  return out;
}

std::uint64_t MemorySystem::promote_range(Allocation& a, std::uint64_t first,
                                          std::uint64_t end) {
  auto it = ddr_pages_.lower_bound(first);
  if (it == ddr_pages_.end() || *it >= end) {
    return 0;
  }
  const std::uint64_t pb = page_bytes();
  std::uint64_t promoted = 0;
  while (it != ddr_pages_.end() && *it < end) {
    const std::uint64_t p = *it;
    it = ddr_pages_.erase(it);
    charge_alloc(a, a.page_home(VirtAddr{p * pb}, pb), 1);
    ++promoted;
  }
  ddr_credit(a, promoted);
  return promoted;
}

void MemorySystem::update_residency_summary(AddrRange range, int socket,
                                            std::uint64_t mapped_pages) {
  if (mapped_pages == 0) {
    return;
  }
  Allocation* const a = space_.find(range.base);
  const std::uint64_t pb = space_.page_bytes();
  if (a == nullptr || range.first_page(pb) < a->range().first_page(pb) ||
      range.end_page(pb) > a->range().end_page(pb)) {
    // Range not wholly inside one allocation: skip the summary (it stays
    // conservative — "still absent" only costs the exact fallback query).
    return;
  }
  a->gpu_absent_init(gpu_pt_.size(), a->range().page_count(pb));
  a->gpu_absent_sub(socket, mapped_pages);
}

PrefaultOutcome MemorySystem::prefault(AddrRange range, int socket) {
  // Host-side prefault walks the host page table to find entries to
  // mirror; untouched pages are bulk-created first (and reported, since
  // creation dominates their cost). Pages the prefetch path creates are
  // placed for the target GPU, so a pending first-touch resolves to it.
  if (Allocation* a = space_.find(range.base);
      a != nullptr && a->home_pending()) {
    a->resolve_home(socket);
  }
  PrefaultOutcome out;
  PageTable& pt = gpu_pt(socket);
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t first = range.first_page(pb);
  const std::uint64_t end = range.end_page(pb);
  pt.for_each_absent_run(first, end, [&](std::uint64_t a, std::uint64_t b) {
    out.inserted += b - a;
    out.materialized += cpu_pt_.insert_pages(a, b);
  });
  pt.insert_pages(first, end);
  update_residency_summary(range, socket, out.inserted);
  out.present = (end - first) - out.inserted;
  if (machine_.is_apu() && out.materialized > 0) {
    charge_created(range.base, out.materialized);
  }
  if ((!ddr_pages_.empty() || !split_spans_.empty()) && machine_.is_apu()) {
    Allocation* a = space_.find(range.base);
    if (a != nullptr) {
      // Prefetching spilled pages pulls them back into HBM in bulk.
      out.promoted = promote_range(*a, first, end);
      // A prefaulted span that is fully CPU-resident and back in the fast
      // tier re-homogenized: khugepaged collapses it to one 2 MB mapping.
      if (thp_dynamic()) {
        auto it = split_spans_.lower_bound(first);
        while (it != split_spans_.end() && *it < end) {
          if (cpu_pt_.present(*it) && ddr_pages_.count(*it) == 0) {
            it = split_spans_.erase(it);
            ++out.collapsed;
          } else {
            ++it;
          }
        }
      }
    }
  }
  return out;
}

std::uint64_t MemorySystem::remote_pages(AddrRange range, int device) const {
  const Allocation* a = space_.find(range.base);
  if (a == nullptr) {
    return 0;
  }
  return a->remote_pages(range, device, page_bytes());
}

std::uint64_t MemorySystem::migrate_pages(AddrRange range, int to_socket) {
  Allocation* const a = space_.find(range.base);
  if (a == nullptr) {
    throw std::invalid_argument("MemorySystem::migrate_pages: unmapped base " +
                                range.base.to_string());
  }
  if (a->kind() == MemKind::DevicePool) {
    throw std::invalid_argument(
        "MemorySystem::migrate_pages: pool allocation '" + a->name() +
        "' cannot migrate (only SVM memory does)");
  }
  (void)hbm_used_.at(static_cast<std::size_t>(to_socket));  // bounds check
  if (a->home_pending()) {
    // Nothing material yet: the "migration" just decides the pending home.
    a->resolve_home(to_socket);
    return 0;
  }
  const AddrRange whole = a->range();
  const std::uint64_t pb = page_bytes();
  const std::uint64_t whole_first = whole.first_page(pb);
  const std::uint64_t whole_end = whole.end_page(pb);
  std::uint64_t first = std::max(range.first_page(pb), whole_first);
  std::uint64_t end = std::min(range.end_page(pb), whole_end);
  if (first >= end) {
    return 0;
  }

  if (first == whole_first && end == whole_end) {
    // -- whole-allocation move: collapse onto one fixed home --------------
    const bool interleaved = a->placement() == Placement::Interleaved;
    if (!interleaved && a->home_socket() == to_socket &&
        a->home_overrides().empty()) {
      return 0;
    }
    const std::uint64_t resident = cpu_pt_.count_present(whole);
    // Move the HBM attribution under the old placement, then collapse the
    // allocation onto its new fixed home. Spilled pages come along: the
    // migration copies them into the destination's HBM.
    if (machine_.is_apu()) {
      credit_all(*a);
      if (a->ddr_resident() > 0) {
        ddr_credit(*a, a->ddr_resident());
      }
      ddr_pages_.erase(ddr_pages_.lower_bound(whole_first),
                       ddr_pages_.lower_bound(whole_end));
    }
    a->set_placement(Placement::FixedHome, 1);
    a->set_home_socket(to_socket);
    a->clear_home_overrides();
    if (machine_.is_apu() && resident > 0) {
      charge_alloc(*a, to_socket, resident);
    }
    // Remapped pages arrive as pristine huge mappings again.
    split_spans_.erase(split_spans_.lower_bound(whole_first),
                       split_spans_.lower_bound(whole_end));
    // Migration remaps physical pages: every socket's GPU translations of
    // the allocation are stale and torn down; accesses re-fault or
    // re-prefault against the new home.
    for (std::size_t s = 0; s < gpu_pt_.size(); ++s) {
      gpu_pt_[s].remove_range(whole);
      tlb_[s].invalidate_range(whole);
    }
    a->gpu_absent_reset();
    migrated_.at(static_cast<std::size_t>(to_socket)) += resident;
    maybe_check_accounting();
    return resident;
  }

  // -- partial move: per-page home overrides, idempotent on already-home
  // pages, promotion of spilled pages into the new home -------------------
  std::uint64_t moved = 0;
  bool rehomed_any = false;
  const bool split_moves = thp_dynamic();
  for (std::uint64_t p = first; p < end; ++p) {
    const VirtAddr addr{p * pb};
    if (a->page_home(addr, pb) == to_socket) {
      continue;  // already home: nothing to move, nothing to charge
    }
    rehomed_any = true;
    const int cur = a->page_home(addr, pb);
    if (machine_.is_apu() && ddr_pages_.erase(p) > 0) {
      ddr_credit(*a, 1);
      charge_alloc(*a, to_socket, 1);
      ++moved;
    } else if (cpu_pt_.present(p)) {
      if (machine_.is_apu()) {
        credit_page(*a, cur);
        charge_alloc(*a, to_socket, 1);
      }
      ++moved;
    }
    a->set_home_override(p - whole_first, to_socket);
    // Moving part of a huge-page neighborhood fragments it: the moved
    // span's PTEs are re-established at 4 KB until a collapse.
    if (split_moves && cpu_pt_.present(p)) {
      split_spans_.insert(p);
    }
  }
  if (!rehomed_any) {
    // Fully idempotent call (every covered page already home): leave the
    // translations alone too — nothing was remapped.
    maybe_check_accounting();
    return 0;
  }
  // Only the covered range's physical pages remapped: tear down exactly
  // those translations everywhere.
  const AddrRange covered{VirtAddr{first * pb}, (end - first) * pb};
  for (std::size_t s = 0; s < gpu_pt_.size(); ++s) {
    gpu_pt_[s].remove_range(covered);
    tlb_[s].invalidate_range(covered);
  }
  a->gpu_absent_reset();
  migrated_.at(static_cast<std::size_t>(to_socket)) += moved;
  maybe_check_accounting();
  return moved;
}

TlbAccessResult MemorySystem::tlb_access(AddrRange range, int socket) {
  return tlb(socket).access_range(range);
}

std::uint64_t MemorySystem::ddr_pages(AddrRange range) const {
  if (ddr_pages_.empty()) {
    return 0;
  }
  const std::uint64_t pb = page_bytes();
  return static_cast<std::uint64_t>(
      std::distance(ddr_pages_.lower_bound(range.first_page(pb)),
                    ddr_pages_.lower_bound(range.end_page(pb))));
}

std::uint64_t MemorySystem::split_spans(AddrRange range) const {
  if (split_spans_.empty()) {
    return 0;
  }
  const std::uint64_t pb = page_bytes();
  return static_cast<std::uint64_t>(
      std::distance(split_spans_.lower_bound(range.first_page(pb)),
                    split_spans_.lower_bound(range.end_page(pb))));
}

std::uint64_t MemorySystem::thp_split_range(AddrRange range) {
  if (!thp_dynamic()) {
    return 0;
  }
  const std::uint64_t pb = page_bytes();
  const std::uint64_t first = range.first_page(pb);
  const std::uint64_t end = range.end_page(pb);
  std::uint64_t split = 0;
  for (std::uint64_t p = first; p < end; ++p) {
    if (cpu_pt_.present(p) && split_spans_.insert(p).second) {
      ++split;
    }
  }
  return split;
}

ReclaimOutcome MemorySystem::reclaim(int socket, std::uint64_t target_bytes,
                                     std::uint64_t max_pages) {
  ReclaimOutcome out;
  if (!machine_.is_apu() || max_pages == 0 ||
      hbm_used(socket) <= target_bytes) {
    return out;
  }
  const std::uint64_t pb = page_bytes();
  // Victim scan: every SVM page homed here that is CPU-resident and not
  // already spilled is a candidate; pool pages are pinned (the driver
  // cannot page out a coarse-grain allocation). Coldest first, by
  // (remote-touch heat, recency, seeded hash) — the hash gives runs with
  // no counter signal a deterministic but seed-dependent victim order.
  struct Victim {
    std::uint64_t heat_key;
    std::uint64_t epoch;
    std::uint64_t tie;
    std::uint64_t page;
    Allocation* alloc;
  };
  std::vector<Victim> victims;
  const std::uint64_t seed = machine_.seed();
  space_.for_each([&](Allocation& a) {
    if (a.kind() != MemKind::HostOs || a.home_pending()) {
      return;
    }
    const std::uint64_t first = a.range().first_page(pb);
    const std::uint64_t end = a.range().end_page(pb);
    for (std::uint64_t p = first; p < end; ++p) {
      if (a.page_home(VirtAddr{p * pb}, pb) != socket ||
          !cpu_pt_.present(p) || ddr_pages_.count(p) != 0) {
        continue;
      }
      std::uint64_t heat_key = 0;
      std::uint64_t epoch = 0;
      if (auto it = heat_.find(p); it != heat_.end()) {
        heat_key = it->second.count;
        epoch = it->second.epoch;
      }
      victims.push_back(Victim{heat_key, epoch, mix64(seed ^ p), p, &a});
    }
  });
  std::sort(victims.begin(), victims.end(), [](const Victim& l, const Victim& r) {
    if (l.heat_key != r.heat_key) {
      return l.heat_key < r.heat_key;
    }
    if (l.epoch != r.epoch) {
      return l.epoch < r.epoch;
    }
    return l.tie < r.tie;
  });
  const bool split_evictions = thp_dynamic();
  for (const Victim& v : victims) {
    if (out.evicted >= max_pages || hbm_used(socket) <= target_bytes) {
      break;
    }
    Allocation& a = *v.alloc;
    // Spill: the page leaves HBM for the DDR tier. Its CPU entry stays
    // (the data is intact, just slower), so checksums are unaffected by
    // construction; the GPU translations everywhere are torn down and a
    // later GPU access promotes the page back.
    credit_page(a, socket);
    ddr_charge(a, 1);
    ddr_pages_.insert(v.page);
    const AddrRange pr{VirtAddr{v.page * pb}, pb};
    for (std::size_t s = 0; s < gpu_pt_.size(); ++s) {
      gpu_pt_[s].remove_range(pr);
      tlb_[s].invalidate_range(pr);
    }
    a.gpu_absent_reset();
    if (split_evictions && split_spans_.insert(v.page).second) {
      ++out.split;
    }
    ++out.evicted;
  }
  maybe_check_accounting();
  return out;
}

MigrationCandidate MemorySystem::take_migration_candidate(int threshold) {
  MigrationCandidate out;
  if (threshold <= 0) {
    return out;
  }
  for (auto it = heat_.begin(); it != heat_.end();) {
    if (it->second.count < static_cast<std::uint32_t>(threshold)) {
      ++it;
      continue;
    }
    const std::uint64_t p = it->first;
    const int target = it->second.socket;
    it = heat_.erase(it);  // consumed either way: the streak restarts
    const std::uint64_t pb = page_bytes();
    Allocation* a = space_.find(VirtAddr{p * pb});
    if (a == nullptr || a->kind() != MemKind::HostOs ||
        a->page_home(VirtAddr{p * pb}, pb) == target ||
        !cpu_pt_.present(p) || ddr_pages_.count(p) != 0) {
      continue;  // stale or already satisfied: keep scanning
    }
    out.page = p;
    out.to_socket = target;
    out.valid = true;
    return out;
  }
  return out;
}

void MemorySystem::check_accounting() const {
  if (!machine_.is_apu()) {
    return;  // discrete pool charges carry no per-allocation attribution
  }
  std::vector<std::uint64_t> expected(hbm_used_.size(), 0);
  std::uint64_t expected_ddr_pages = 0;
  space_.for_each([&](const Allocation& a) {
    const std::vector<std::uint64_t>& v = a.hbm_resident_all();
    for (std::size_t s = 0; s < v.size() && s < expected.size(); ++s) {
      expected[s] += v[s];
    }
    expected_ddr_pages += a.ddr_resident();
  });
  const std::uint64_t pb = page_bytes();
  for (std::size_t s = 0; s < hbm_used_.size(); ++s) {
    if (expected[s] * pb != hbm_used_[s]) {
      throw std::logic_error(
          "MemorySystem accounting drift: socket " + std::to_string(s) +
          " hbm_used=" + std::to_string(hbm_used_[s]) +
          " but allocations attribute " + std::to_string(expected[s] * pb));
    }
  }
  if (expected_ddr_pages * pb != ddr_used_ ||
      expected_ddr_pages != ddr_pages_.size()) {
    throw std::logic_error(
        "MemorySystem accounting drift: ddr_used=" + std::to_string(ddr_used_) +
        " spilled-set=" + std::to_string(ddr_pages_.size()) +
        " but allocations attribute " + std::to_string(expected_ddr_pages) +
        " pages");
  }
}

}  // namespace zc::mem
