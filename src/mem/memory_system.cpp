#include "zc/mem/memory_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "zc/race/api.hpp"

namespace zc::mem {

MemorySystem::MemorySystem(apu::Machine& machine)
    : machine_{machine},
      space_{machine.page_bytes()},
      cpu_pt_{machine.page_bytes()},
      hbm_capacity_{machine.topology().hbm_bytes} {
  for (int s = 0; s < machine.sockets(); ++s) {
    gpu_pt_.emplace_back(machine.page_bytes());
    tlb_.emplace_back(machine.costs().tlb_entries, machine.page_bytes());
    hbm_used_.push_back(0);
    migrated_.push_back(0);
  }
}

int MemorySystem::home_of(VirtAddr a) const {
  const Allocation* alloc = space_.find(a);
  return alloc != nullptr ? alloc->home_socket() : 0;
}

// The physical-occupancy counters are mutated by every allocating thread and
// by fault servicing; in a real driver the memory manager's lock orders
// them. The simulator models that lock as a race-detector monitor keyed on
// the counter vector — each counter operation is one bracketed section (the
// sections are pure state, never advancing virtual time), so the detector
// sees the ordering the mm lock provides while still checking every access.
void MemorySystem::charge(int socket, std::uint64_t bytes) {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_write(sched, &hbm_used_.at(static_cast<std::size_t>(socket)),
                 sizeof(std::uint64_t), "MemorySystem::hbm_used_");
  hbm_used_.at(static_cast<std::size_t>(socket)) += bytes;
}

void MemorySystem::credit(int socket, std::uint64_t bytes) {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_write(sched, &hbm_used_.at(static_cast<std::size_t>(socket)),
                 sizeof(std::uint64_t), "MemorySystem::hbm_used_");
  std::uint64_t& used = hbm_used_.at(static_cast<std::size_t>(socket));
  used -= std::min(used, bytes);
}

Allocation& MemorySystem::os_alloc(std::uint64_t bytes, std::string name,
                                   int home_socket) {
  Allocation& a = space_.allocate(bytes, MemKind::HostOs, std::move(name));
  a.set_home_socket(home_socket);
  return a;
}

Allocation& MemorySystem::os_alloc_placed(std::uint64_t bytes,
                                          std::string name,
                                          Placement placement,
                                          int home_socket) {
  Allocation& a = os_alloc(bytes, std::move(name), home_socket);
  a.set_placement(placement, static_cast<int>(gpu_pt_.size()));
  return a;
}

void MemorySystem::charge_created(VirtAddr addr, std::uint64_t pages) {
  if (pages == 0) {
    return;
  }
  const std::uint64_t pb = page_bytes();
  const Allocation* a = space_.find(addr);
  if (a != nullptr && a->placement() == Placement::Interleaved) {
    // Striped pages land on every socket; attribute an even split (exact
    // per-page attribution would track which pages materialized — the
    // even split keeps the counters right for whole-buffer touches, the
    // overwhelmingly common shape).
    const std::uint64_t k = hbm_used_.size();
    for (std::uint64_t s = 0; s < k; ++s) {
      const std::uint64_t share = pages / k + (s < pages % k ? 1 : 0);
      if (share > 0) {
        charge(static_cast<int>(s), share * pb);
      }
    }
    return;
  }
  charge(a != nullptr ? a->home_socket() : 0, pages * pb);
}

void MemorySystem::credit_released(const Allocation& a, std::uint64_t pages) {
  if (pages == 0) {
    return;
  }
  const std::uint64_t pb = page_bytes();
  if (a.placement() == Placement::Interleaved) {
    const std::uint64_t k = hbm_used_.size();
    for (std::uint64_t s = 0; s < k; ++s) {
      const std::uint64_t share = pages / k + (s < pages % k ? 1 : 0);
      if (share > 0) {
        credit(static_cast<int>(s), share * pb);
      }
    }
    return;
  }
  credit(a.home_socket(), pages * pb);
}

void MemorySystem::os_free(VirtAddr base) { release(base, MemKind::HostOs); }

bool MemorySystem::pool_fits(std::uint64_t bytes, int socket) const {
  sim::Scheduler& sched = machine_.sched();
  race::MonitorGuard mm{sched, &hbm_used_};
  race::on_read(sched, &hbm_used_.at(static_cast<std::size_t>(socket)),
                sizeof(std::uint64_t), "MemorySystem::hbm_used_");
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t footprint = (bytes + pb - 1) / pb * pb;
  return hbm_used_.at(static_cast<std::size_t>(socket)) + footprint <=
         hbm_capacity_;
}

Allocation* MemorySystem::try_pool_alloc(std::uint64_t bytes, std::string name,
                                         int socket) {
  // Pool allocations consume physical pages immediately (bulk creation),
  // so this is where the finite shared HBM store pushes back first.
  if (!pool_fits(bytes, socket)) {
    return nullptr;
  }
  Allocation& a = space_.allocate(bytes, MemKind::DevicePool, std::move(name));
  a.set_home_socket(socket);
  // Pool allocations are mapped in bulk at creation: the owning GPU can
  // translate them immediately (no XNACK), and on an APU the CPU can as
  // well, because the driver fulfilled the request from shared storage.
  gpu_pt(socket).insert_range(a.range());
  std::uint64_t created_pages = a.range().page_count(space_.page_bytes());
  a.gpu_absent_init(gpu_pt_.size(), created_pages);
  a.gpu_absent_sub(socket, created_pages);
  if (machine_.is_apu()) {
    created_pages = cpu_pt_.insert_range(a.range());
  }
  charge(socket, created_pages * space_.page_bytes());
  return &a;
}

Allocation& MemorySystem::pool_alloc(std::uint64_t bytes, std::string name,
                                     int socket) {
  Allocation* const a = try_pool_alloc(bytes, std::move(name), socket);
  if (a == nullptr) {
    throw std::runtime_error(
        "MemorySystem: socket " + std::to_string(socket) +
        " HBM exhausted (" + std::to_string(hbm_used(socket)) + " of " +
        std::to_string(hbm_capacity_) + " bytes used, pool request " +
        std::to_string(bytes) + ")");
  }
  return *a;
}

void MemorySystem::pool_free(VirtAddr base) {
  release(base, MemKind::DevicePool);
}

void MemorySystem::release(VirtAddr base, MemKind expected) {
  Allocation* a = space_.find(base);
  if (a == nullptr || a->base() != base) {
    throw std::invalid_argument("MemorySystem: free of unknown base " +
                                base.to_string());
  }
  if (a->kind() != expected) {
    throw std::invalid_argument(std::string{"MemorySystem: free of "} +
                                to_string(a->kind()) + " allocation '" +
                                a->name() + "' via " + to_string(expected) +
                                " API");
  }
  const AddrRange range = a->range();
  // Credit the physical pages this allocation held: on an APU that is its
  // CPU-resident page count (materialized pages, whatever path created
  // them); on a discrete node only pool (VRAM) allocations charged.
  if (machine_.is_apu()) {
    credit_released(*a, cpu_pt_.count_present(range));
  } else if (a->kind() == MemKind::DevicePool) {
    credit(a->home_socket(), range.page_count(page_bytes()) * page_bytes());
  }
  cpu_pt_.remove_range(range);
  for (std::size_t s = 0; s < gpu_pt_.size(); ++s) {
    gpu_pt_[s].remove_range(range);
    tlb_[s].invalidate_range(range);
  }
  space_.free(base);
}

std::uint64_t MemorySystem::host_touch(AddrRange range, int toucher_socket) {
  // Page-granularity race check: a host touch is a host-side write of every
  // page in the range. Under zero-copy these are the same physical pages a
  // kernel accesses, so a touch during an in-flight kernel with no
  // interposed completion edge is exactly the unified-memory data race the
  // detector exists to flag.
  if (sim::ConcurrencyHooks* h = machine_.sched().hooks()) {
    const Allocation* a = space_.find(range.base);
    const std::string site =
        "host_touch('" + (a != nullptr ? a->name() : std::string{"?"}) + "')";
    const std::uint64_t pb = page_bytes();
    h->on_host_pages(range.first_page(pb),
                     range.end_page(pb) - range.first_page(pb),
                     /*is_write=*/true, site);
  }
  if (Allocation* a = space_.find(range.base);
      a != nullptr && a->home_pending()) {
    a->resolve_home(toucher_socket);
  }
  const std::uint64_t created = cpu_pt_.insert_range(range);
  if (machine_.is_apu() && created > 0) {
    charge_created(range.base, created);
  }
  return created;
}

std::uint64_t MemorySystem::gpu_absent_pages(AddrRange range,
                                             int socket) const {
  return gpu_pt_.at(static_cast<std::size_t>(socket)).count_absent(range);
}

std::uint64_t MemorySystem::gpu_absent_pages(AddrRange range, int socket,
                                             Allocation* hint) const {
  // A fully-mapped summary answers any subrange O(1); GPU translations
  // are only ever removed by release(), which frees the allocation
  // itself, so a zero counter can never go stale.
  if (hint != nullptr && hint->gpu_fully_mapped(socket)) {
    return 0;
  }
  return gpu_pt_.at(static_cast<std::size_t>(socket)).count_absent(range);
}

std::uint64_t MemorySystem::cpu_resident_pages(AddrRange range) const {
  return cpu_pt_.count_present(range);
}

FaultOutcome MemorySystem::gpu_fault_in(AddrRange range, int socket) {
  // The XNACK-replay walk materializes the host page if needed (the
  // expensive demand path), then inserts the translation into the GPU page
  // table. A GPU-side first touch homes the pages on the faulting socket
  // (the paper's first-touch lesson: the device that materializes owns).
  if (Allocation* a = space_.find(range.base);
      a != nullptr && a->home_pending()) {
    a->resolve_home(socket);
  }
  FaultOutcome out;
  PageTable& pt = gpu_pt(socket);
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t first = range.first_page(pb);
  const std::uint64_t end = range.end_page(pb);
  // Pages the GPU cannot yet translate fault; of those, pages the host
  // never materialized are additionally created (GPU-side first touch).
  // Walking the absent *runs* gives the same counts as the page loop in
  // O(runs), and only gpu-absent pages reach the host table — a page
  // already GPU-mapped never re-touches host state.
  pt.for_each_absent_run(first, end, [&](std::uint64_t a, std::uint64_t b) {
    out.faulted += b - a;
    out.non_resident += cpu_pt_.insert_pages(a, b);
  });
  pt.insert_pages(first, end);
  update_residency_summary(range, socket, out.faulted);
  if (machine_.is_apu() && out.non_resident > 0) {
    charge_created(range.base, out.non_resident);
  }
  return out;
}

void MemorySystem::update_residency_summary(AddrRange range, int socket,
                                            std::uint64_t mapped_pages) {
  if (mapped_pages == 0) {
    return;
  }
  Allocation* const a = space_.find(range.base);
  const std::uint64_t pb = space_.page_bytes();
  if (a == nullptr || range.first_page(pb) < a->range().first_page(pb) ||
      range.end_page(pb) > a->range().end_page(pb)) {
    // Range not wholly inside one allocation: skip the summary (it stays
    // conservative — "still absent" only costs the exact fallback query).
    return;
  }
  a->gpu_absent_init(gpu_pt_.size(), a->range().page_count(pb));
  a->gpu_absent_sub(socket, mapped_pages);
}

PrefaultOutcome MemorySystem::prefault(AddrRange range, int socket) {
  // Host-side prefault walks the host page table to find entries to
  // mirror; untouched pages are bulk-created first (and reported, since
  // creation dominates their cost). Pages the prefetch path creates are
  // placed for the target GPU, so a pending first-touch resolves to it.
  if (Allocation* a = space_.find(range.base);
      a != nullptr && a->home_pending()) {
    a->resolve_home(socket);
  }
  PrefaultOutcome out;
  PageTable& pt = gpu_pt(socket);
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t first = range.first_page(pb);
  const std::uint64_t end = range.end_page(pb);
  pt.for_each_absent_run(first, end, [&](std::uint64_t a, std::uint64_t b) {
    out.inserted += b - a;
    out.materialized += cpu_pt_.insert_pages(a, b);
  });
  pt.insert_pages(first, end);
  update_residency_summary(range, socket, out.inserted);
  out.present = (end - first) - out.inserted;
  if (machine_.is_apu() && out.materialized > 0) {
    charge_created(range.base, out.materialized);
  }
  return out;
}

std::uint64_t MemorySystem::remote_pages(AddrRange range, int device) const {
  const Allocation* a = space_.find(range.base);
  if (a == nullptr) {
    return 0;
  }
  return a->remote_pages(range, device, page_bytes());
}

std::uint64_t MemorySystem::migrate_pages(AddrRange range, int to_socket) {
  Allocation* const a = space_.find(range.base);
  if (a == nullptr) {
    throw std::invalid_argument("MemorySystem::migrate_pages: unmapped base " +
                                range.base.to_string());
  }
  if (a->kind() == MemKind::DevicePool) {
    throw std::invalid_argument(
        "MemorySystem::migrate_pages: pool allocation '" + a->name() +
        "' cannot migrate (only SVM memory does)");
  }
  (void)hbm_used_.at(static_cast<std::size_t>(to_socket));  // bounds check
  if (a->home_pending()) {
    // Nothing material yet: the "migration" just decides the pending home.
    a->resolve_home(to_socket);
    return 0;
  }
  const bool interleaved = a->placement() == Placement::Interleaved;
  if (!interleaved && a->home_socket() == to_socket) {
    return 0;
  }
  const AddrRange whole = a->range();
  const std::uint64_t resident = cpu_pt_.count_present(whole);
  // Move the HBM attribution under the old placement, then collapse the
  // allocation onto its new fixed home.
  if (machine_.is_apu()) {
    credit_released(*a, resident);
  }
  a->set_placement(Placement::FixedHome, 1);
  a->set_home_socket(to_socket);
  if (machine_.is_apu() && resident > 0) {
    charge(to_socket, resident * page_bytes());
  }
  // Migration remaps physical pages: every socket's GPU translations of
  // the allocation are stale and torn down; accesses re-fault or
  // re-prefault against the new home.
  for (std::size_t s = 0; s < gpu_pt_.size(); ++s) {
    gpu_pt_[s].remove_range(whole);
    tlb_[s].invalidate_range(whole);
  }
  a->gpu_absent_reset();
  migrated_.at(static_cast<std::size_t>(to_socket)) += resident;
  return resident;
}

TlbAccessResult MemorySystem::tlb_access(AddrRange range, int socket) {
  return tlb(socket).access_range(range);
}

}  // namespace zc::mem
