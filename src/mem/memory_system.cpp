#include "zc/mem/memory_system.hpp"

#include <stdexcept>
#include <utility>

namespace zc::mem {

MemorySystem::MemorySystem(apu::Machine& machine)
    : machine_{machine},
      space_{machine.page_bytes()},
      cpu_pt_{machine.page_bytes()} {
  for (int s = 0; s < machine.sockets(); ++s) {
    gpu_pt_.emplace_back(machine.page_bytes());
    tlb_.emplace_back(machine.costs().tlb_entries, machine.page_bytes());
  }
}

Allocation& MemorySystem::os_alloc(std::uint64_t bytes, std::string name,
                                   int home_socket) {
  Allocation& a = space_.allocate(bytes, MemKind::HostOs, std::move(name));
  a.set_home_socket(home_socket);
  return a;
}

void MemorySystem::os_free(VirtAddr base) { release(base, MemKind::HostOs); }

Allocation& MemorySystem::pool_alloc(std::uint64_t bytes, std::string name,
                                     int socket) {
  Allocation& a = space_.allocate(bytes, MemKind::DevicePool, std::move(name));
  a.set_home_socket(socket);
  // Pool allocations are mapped in bulk at creation: the owning GPU can
  // translate them immediately (no XNACK), and on an APU the CPU can as
  // well, because the driver fulfilled the request from shared storage.
  gpu_pt(socket).insert_range(a.range());
  if (machine_.is_apu()) {
    cpu_pt_.insert_range(a.range());
  }
  return a;
}

void MemorySystem::pool_free(VirtAddr base) {
  release(base, MemKind::DevicePool);
}

void MemorySystem::release(VirtAddr base, MemKind expected) {
  Allocation* a = space_.find(base);
  if (a == nullptr || a->base() != base) {
    throw std::invalid_argument("MemorySystem: free of unknown base " +
                                base.to_string());
  }
  if (a->kind() != expected) {
    throw std::invalid_argument(std::string{"MemorySystem: free of "} +
                                to_string(a->kind()) + " allocation '" +
                                a->name() + "' via " + to_string(expected) +
                                " API");
  }
  const AddrRange range = a->range();
  cpu_pt_.remove_range(range);
  for (std::size_t s = 0; s < gpu_pt_.size(); ++s) {
    gpu_pt_[s].remove_range(range);
    tlb_[s].invalidate_range(range);
  }
  space_.free(base);
}

std::uint64_t MemorySystem::host_touch(AddrRange range) {
  return cpu_pt_.insert_range(range);
}

std::uint64_t MemorySystem::gpu_absent_pages(AddrRange range,
                                             int socket) const {
  return gpu_pt_.at(static_cast<std::size_t>(socket)).count_absent(range);
}

std::uint64_t MemorySystem::cpu_resident_pages(AddrRange range) const {
  return cpu_pt_.count_present(range);
}

FaultOutcome MemorySystem::gpu_fault_in(AddrRange range, int socket) {
  // The XNACK-replay walk materializes the host page if needed (the
  // expensive demand path), then inserts the translation into the GPU page
  // table.
  FaultOutcome out;
  PageTable& pt = gpu_pt(socket);
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t end = range.end_page(pb);
  for (std::uint64_t p = range.first_page(pb); p < end; ++p) {
    if (!pt.insert(p)) {
      continue;  // already GPU-translatable: no fault
    }
    ++out.faulted;
    if (cpu_pt_.insert(p)) {
      ++out.non_resident;
    }
  }
  return out;
}

PrefaultOutcome MemorySystem::prefault(AddrRange range, int socket) {
  // Host-side prefault walks the host page table to find entries to
  // mirror; untouched pages are bulk-created first (and reported, since
  // creation dominates their cost).
  PrefaultOutcome out;
  PageTable& pt = gpu_pt(socket);
  const std::uint64_t pb = space_.page_bytes();
  const std::uint64_t end = range.end_page(pb);
  for (std::uint64_t p = range.first_page(pb); p < end; ++p) {
    if (!pt.insert(p)) {
      ++out.present;
      continue;
    }
    ++out.inserted;
    if (cpu_pt_.insert(p)) {
      ++out.materialized;
    }
  }
  return out;
}

TlbAccessResult MemorySystem::tlb_access(AddrRange range, int socket) {
  return tlb(socket).access_range(range);
}

}  // namespace zc::mem
