#include "zc/mem/page_table.hpp"

#include <stdexcept>

namespace zc::mem {

PageTable::PageTable(std::uint64_t page_bytes) : page_bytes_{page_bytes} {
  if (page_bytes_ == 0 || (page_bytes_ & (page_bytes_ - 1)) != 0) {
    throw std::invalid_argument("PageTable: page size must be a power of two");
  }
}

std::uint64_t PageTable::insert_pages(std::uint64_t first, std::uint64_t end) {
  if (first >= end) {
    return 0;
  }
  invalidate_queries(first, end);
  std::uint64_t inserted = 0;
  for (std::uint64_t p = first; p < end; ++p) {
    inserted += pages_.insert(p).second ? 1 : 0;
  }
  return inserted;
}

std::uint64_t PageTable::insert_range(AddrRange range) {
  return insert_pages(range.first_page(page_bytes_),
                      range.end_page(page_bytes_));
}

std::uint64_t PageTable::remove_range(AddrRange range) {
  const std::uint64_t first = range.first_page(page_bytes_);
  const std::uint64_t end = range.end_page(page_bytes_);
  if (first >= end || pages_.empty()) {
    return 0;
  }
  invalidate_queries(first, end);
  if (end - first < pages_.size()) {
    std::uint64_t removed = 0;
    for (std::uint64_t p = first; p < end; ++p) {
      removed += pages_.erase(p);
    }
    return removed;
  }
  // Range wider than the table: one pass over the set beats per-page probes.
  std::uint64_t removed = 0;
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (*it >= first && *it < end) {
      it = pages_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::uint64_t PageTable::count_absent_pages(std::uint64_t first,
                                            std::uint64_t end) const {
  const std::uint64_t total = end - first;
  if (pages_.empty()) {
    return total;
  }
  if (total <= pages_.size()) {
    std::uint64_t absent = 0;
    for (std::uint64_t p = first; p < end; ++p) {
      absent += pages_.contains(p) ? 0 : 1;
    }
    return absent;
  }
  // Range wider than the table: count members inside the range instead of
  // probing every page of the range.
  std::uint64_t present = 0;
  for (const std::uint64_t p : pages_) {
    present += (p >= first && p < end) ? 1 : 0;
  }
  return total - present;
}

std::uint64_t PageTable::count_absent(AddrRange range) const {
  const std::uint64_t first = range.first_page(page_bytes_);
  const std::uint64_t end = range.end_page(page_bytes_);
  if (first >= end) {
    return 0;
  }
  for (std::uint32_t i = 0; i < qcache_used_; ++i) {
    if (qcache_[i].first == first && qcache_[i].end == end) {
      return qcache_[i].absent;
    }
  }
  const std::uint64_t absent = count_absent_pages(first, end);
  if (qcache_used_ < kQueryCacheSlots) {
    qcache_[qcache_used_++] = CachedQuery{first, end, absent};
  } else {
    qcache_[qcache_next_] = CachedQuery{first, end, absent};
    qcache_next_ = (qcache_next_ + 1) % kQueryCacheSlots;
  }
  return absent;
}

}  // namespace zc::mem
