#include "zc/mem/page_table.hpp"

#include <stdexcept>

namespace zc::mem {

PageTable::PageTable(std::uint64_t page_bytes) : page_bytes_{page_bytes} {
  if (page_bytes_ == 0 || (page_bytes_ & (page_bytes_ - 1)) != 0) {
    throw std::invalid_argument("PageTable: page size must be a power of two");
  }
}

std::uint64_t PageTable::insert_range(AddrRange range) {
  std::uint64_t inserted = 0;
  const std::uint64_t end = range.end_page(page_bytes_);
  for (std::uint64_t p = range.first_page(page_bytes_); p < end; ++p) {
    inserted += pages_.insert(p).second ? 1 : 0;
  }
  return inserted;
}

std::uint64_t PageTable::remove_range(AddrRange range) {
  std::uint64_t removed = 0;
  const std::uint64_t end = range.end_page(page_bytes_);
  for (std::uint64_t p = range.first_page(page_bytes_); p < end; ++p) {
    removed += pages_.erase(p);
  }
  return removed;
}

std::uint64_t PageTable::count_absent(AddrRange range) const {
  std::uint64_t absent = 0;
  const std::uint64_t end = range.end_page(page_bytes_);
  for (std::uint64_t p = range.first_page(page_bytes_); p < end; ++p) {
    absent += pages_.contains(p) ? 0 : 1;
  }
  return absent;
}

}  // namespace zc::mem
