#include "zc/hsa/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace zc::hsa {

using sim::Duration;
using sim::TimePoint;

Runtime::Runtime(apu::Machine& machine, mem::MemorySystem& mem)
    : machine_{machine},
      mem_{mem},
      watchdog_{machine, machine.env().watchdog,
                [this](trace::FaultRecord r) { record_fault(r); }},
      trace_mutex_{"hsa-trace"},
      stats_{trace_mutex_, "CallStats"},
      ctrace_{trace_mutex_, "CallTrace"},
      ktrace_{trace_mutex_, "KernelTrace"},
      cptrace_{trace_mutex_, "CopyTrace"},
      ledger_{trace_mutex_, "OverheadLedger"},
      ftrace_{trace_mutex_, "FaultTrace"},
      devstats_{trace_mutex_, "DeviceCounters",
                static_cast<std::size_t>(mem.sockets())},
      tenantstats_{trace_mutex_, "TenantCounters"},
      thread_tenants_{trace_mutex_, "ThreadTenants"} {}

void Runtime::configure_tenants(int tenants) {
  // Pre-run opt-in configuration (like call-trace enablement): sized before
  // the service worker fibers start, so the unguarded write is safe.
  tenantstats_.unguarded().resize(
      tenants > 0 ? static_cast<std::size_t>(tenants) : 0);
}

void Runtime::set_thread_tenant(int tenant) {
  sim::LockGuard lock{trace_mutex_, sched()};
  auto& map = thread_tenants_.get(sched());
  if (tenant < 0) {
    map.erase(sched().current().id());
  } else {
    map[sched().current().id()] = tenant;
  }
}

int Runtime::current_tenant_locked() {
  const auto& map = thread_tenants_.get(sched());
  if (map.empty()) {
    return -1;
  }
  const auto it = map.find(sched().current().id());
  return it == map.end() ? -1 : it->second;
}

Signal Runtime::hung_signal(std::string name, trace::FaultEvent event,
                            fault::Site site, int device,
                            std::uint64_t host_base, std::uint64_t bytes) {
  Signal sig;
  sig.set_name(name);
  record_fault(trace::FaultRecord{.event = event,
                                  .device = device,
                                  .time = sched().now(),
                                  .host_base = host_base,
                                  .bytes = bytes});
  watchdog_.watch(sig, site, device, std::move(name));
  return sig;
}

void Runtime::record_call(trace::HsaCall call, TimePoint start,
                          Duration latency) {
  // Fast path: nothing observes the per-record lock acquisitions (no
  // concurrency hooks) and nothing needs the per-call ordering (call trace
  // off — its enablement is pre-run opt-in configuration, so the unguarded
  // read is of effectively-constant state). Buffer and flush in blocks.
  if (sched().hooks() == nullptr && !ctrace_.unguarded().enabled()) {
    pending_calls_.push_back({call, start, latency});
    if (pending_calls_.size() >= kCallFlushThreshold) {
      flush_pending_calls();
    }
    return;
  }
  flush_pending_calls();  // older buffered records fold in first
  sim::LockGuard lock{trace_mutex_, sched()};
  stats_.get(sched()).record(call, latency);
  trace::CallTrace& ctrace = ctrace_.get(sched());
  if (ctrace.enabled()) {
    ctrace.record(call, sched().current().id(), start, latency);
  }
}

void Runtime::flush_pending_calls() {
  if (pending_calls_.empty()) {
    return;
  }
  if (sched().in_thread()) {
    sim::LockGuard lock{trace_mutex_, sched()};
    trace::CallStats& stats = stats_.get(sched());
    for (const PendingCall& p : pending_calls_) {
      stats.record(p.call, p.latency);
    }
  } else {
    // Post-run introspection: single-threaded, no lock to model.
    for (const PendingCall& p : pending_calls_) {
      stats_.unguarded().record(p.call, p.latency);
    }
  }
  pending_calls_.clear();
}

void Runtime::record_fault(trace::FaultRecord r) {
  {
    sim::LockGuard lock{trace_mutex_, sched()};
    ftrace_.get(sched()).record(r);
  }
  if (machine_.log().enabled()) {
    machine_.log_add(r.time, "fault",
                     std::string{trace::to_string(r.event)} + " dev" +
                         std::to_string(r.device) + " " +
                         std::to_string(r.bytes) + "B");
  }
}

Signal Runtime::signal_create() {
  const Duration cost = Duration::from_us(0.2);
  const TimePoint start = sched().now();
  sched().advance(cost);
  record_call(trace::HsaCall::SignalCreate, start, cost);
  return Signal{};
}

void Runtime::signal_wait_scacquire(Signal s) {
  const Duration overhead = machine_.costs().signal_wait_overhead;
  const TimePoint start = sched().now();
  const Duration blocked = s.wait(sched());
  sched().advance(overhead);
  record_call(trace::HsaCall::SignalWaitScacquire, start, blocked + overhead);
}

Runtime::ReclaimCharge Runtime::reclaim_to(int device,
                                           std::uint64_t target_bytes,
                                           std::uint64_t max_pages) {
  ReclaimCharge out;
  const mem::ReclaimOutcome ro = mem_.reclaim(device, target_bytes, max_pages);
  if (ro.evicted == 0) {
    return out;
  }
  const apu::CostParams& c = machine_.costs();
  // An injected evict_storm models writeback amplification (dirty spans,
  // compaction churn): the per-page driver work inflates by the factor.
  double factor = 1.0;
  const fault::Injection inj =
      machine_.faults().consult(fault::Site::Eviction, sched().now());
  if (inj.kind == fault::Kind::EvictStorm) {
    factor = inj.factor;
    record_fault(
        trace::FaultRecord{.event = trace::FaultEvent::EvictStormInjected,
                           .device = device,
                           .time = sched().now(),
                           .host_base = 0,
                           .bytes = ro.evicted,
                           .attempt = 0,
                           .factor = inj.factor});
  }
  const std::uint64_t bytes = ro.evicted * mem_.page_bytes();
  // Per-page unmap/TLB-shootdown work on the driver, the SDMA writeback of
  // the spilled bytes, and (THP=dynamic) the span splits the spill forced.
  out.cost =
      machine_.jittered(c.evict_per_page *
                        (static_cast<double>(ro.evicted) * factor)) +
      machine_.jittered(machine_.copy_duration(bytes)) +
      c.thp_split_per_span * static_cast<double>(ro.split);
  out.evicted = ro.evicted;
  record_fault(trace::FaultRecord{.event = trace::FaultEvent::PagesEvicted,
                                  .device = device,
                                  .time = sched().now(),
                                  .host_base = 0,
                                  .bytes = bytes});
  {
    sim::LockGuard lock{trace_mutex_, sched()};
    devstats_.get(sched()).at(static_cast<std::size_t>(device)).evicted_pages +=
        ro.evicted;
  }
  if (machine_.log().enabled()) {
    machine_.log_add(sched().now(), "mem",
                     "reclaim dev" + std::to_string(device) + " spilled " +
                         std::to_string(ro.evicted) + " page(s) to DDR" +
                         (ro.split > 0
                              ? " (" + std::to_string(ro.split) + " THP split)"
                              : ""));
  }
  return out;
}

PoolAllocResult Runtime::try_memory_pool_allocate(std::uint64_t bytes,
                                                  std::string name,
                                                  bool count_in_ledger,
                                                  int device) {
  const apu::CostParams& c = machine_.costs();

  // Failure check first: an injected OOM (the fault engine emulating a
  // fragmented or contended driver) or the socket's HBM genuinely full.
  // Under OMPX_APU_PRESSURE=watermarks a genuinely-full socket degrades
  // gradually instead: the driver spills cold SVM pages to the DDR tier
  // until the request fits (pool pages are pinned, so only SVM residency
  // can yield), and only a reclaim that comes up dry fails the call.
  const fault::Injection inj =
      machine_.faults().consult(fault::Site::PoolAlloc, sched().now());
  trace::FaultEvent failure = trace::FaultEvent::OomInjected;
  bool failed = inj.kind == fault::Kind::Oom;
  std::uint64_t reclaimed = 0;
  Duration reclaim_cost;
  if (!failed && !mem_.pool_fits(bytes, device)) {
    if (machine_.is_apu() &&
        machine_.env().ompx_apu_pressure == apu::PressureMode::Watermarks) {
      const std::uint64_t pb = mem_.page_bytes();
      const std::uint64_t footprint = (bytes + pb - 1) / pb * pb;
      const std::uint64_t cap = mem_.hbm_capacity();
      const std::uint64_t target = cap > footprint ? cap - footprint : 0;
      const ReclaimCharge rc =
          reclaim_to(device, target, ~std::uint64_t{0});
      reclaimed = rc.evicted;
      reclaim_cost = rc.cost;
    }
    if (!mem_.pool_fits(bytes, device)) {
      failed = true;
      failure = trace::FaultEvent::HbmExhausted;
    }
  }
  if (failed) {
    // The failed driver round trip costs the base latency (the driver
    // discovers the shortage before any page population) and is a real
    // call in the stats — plus whatever reclaim work was attempted before
    // the shortage proved unfixable.
    const Duration dur = machine_.jittered(c.pool_alloc_base) + reclaim_cost;
    const TimePoint start = sched().now();
    const sim::Interval iv = machine_.driver(device).reserve(start, dur);
    sched().advance_to(iv.end);
    record_call(trace::HsaCall::MemoryPoolAllocate, start, dur);
    if (count_in_ledger) {
      sim::LockGuard lock{trace_mutex_, sched()};
      ledger_.get(sched()).add_alloc(dur);
    }
    record_fault(trace::FaultRecord{.event = failure,
                                    .device = device,
                                    .time = sched().now(),
                                    .host_base = 0,
                                    .bytes = bytes});
    if (machine_.log().enabled()) {
      machine_.log_add(sched().now(), "hsa",
                       "pool_allocate " + std::to_string(bytes) +
                           "B FAILED (" +
                           trace::to_string(failure) + std::string{")"});
    }
    return PoolAllocResult{Status::OutOfMemory, {}};
  }

  mem::Allocation* const a = mem_.try_pool_alloc(bytes, std::move(name), device);
  // pool_fits was checked above and no yield happened since (cooperative
  // scheduling): the allocation cannot fail here.
  // Small requests are served from already-populated slabs; only large
  // allocations pay per-page creation and bulk GPU page-table population.
  // The whole operation holds the driver lock.
  const bool slab = bytes < mem_.page_bytes() / 2;
  const std::uint64_t pages =
      slab ? 0 : a->range().page_count(mem_.page_bytes());
  const Duration dur =
      machine_.jittered(c.pool_alloc_base +
                        c.bulk_page_populate * static_cast<double>(pages)) +
      reclaim_cost;
  const TimePoint start = sched().now();
  const sim::Interval iv = machine_.driver(device).reserve(start, dur);
  sched().advance_to(iv.end);
  record_call(trace::HsaCall::MemoryPoolAllocate, start, dur);
  if (count_in_ledger) {
    sim::LockGuard lock{trace_mutex_, sched()};
    ledger_.get(sched()).add_alloc(dur);
  }
  if (reclaimed > 0) {
    record_fault(trace::FaultRecord{.event = trace::FaultEvent::PoolReclaimed,
                                    .device = device,
                                    .time = sched().now(),
                                    .host_base = 0,
                                    .bytes = bytes});
  }
  if (machine_.log().enabled()) {
    machine_.log_add(sched().now(), "hsa",
                     "pool_allocate " + std::to_string(bytes) + "B" +
                         (reclaimed > 0 ? " after reclaiming " +
                                              std::to_string(reclaimed) +
                                              " page(s)"
                                        : ""));
  }
  return PoolAllocResult{Status::Ok, a->base(), reclaimed};
}

mem::VirtAddr Runtime::memory_pool_allocate(std::uint64_t bytes,
                                            std::string name,
                                            bool count_in_ledger, int device) {
  const PoolAllocResult r =
      try_memory_pool_allocate(bytes, std::move(name), count_in_ledger, device);
  if (!r.ok()) {
    throw HsaError("memory_pool_allocate: " + std::to_string(bytes) +
                   "B on device " + std::to_string(device) + " failed: " +
                   to_string(r.status));
  }
  return r.addr;
}

void Runtime::memory_pool_free(mem::VirtAddr base) {
  const apu::CostParams& c = machine_.costs();
  mem::Allocation* const a = mem_.space().find(base);
  const bool slab = a != nullptr && a->bytes() < mem_.page_bytes() / 2;
  const std::uint64_t pages =
      (a != nullptr && !slab) ? a->range().page_count(mem_.page_bytes()) : 0;
  const int socket = a != nullptr ? a->home_socket() : 0;
  const Duration dur = machine_.jittered(
      c.pool_free_base + c.pool_free_per_page * static_cast<double>(pages));
  const TimePoint start = sched().now();
  const sim::Interval iv = machine_.driver(socket).reserve(start, dur);
  sched().advance_to(iv.end);
  mem_.pool_free(base);
  record_call(trace::HsaCall::MemoryPoolFree, start, dur);
  sim::LockGuard lock{trace_mutex_, sched()};
  ledger_.get(sched()).add_alloc(dur);
}

Signal Runtime::memory_async_copy(mem::VirtAddr dst, mem::VirtAddr src,
                                  std::uint64_t bytes, bool with_handler,
                                  bool count_in_ledger, int device) {
  if (bytes == 0) {
    throw std::invalid_argument("memory_async_copy: zero-byte copy");
  }
  const apu::CostParams& c = machine_.costs();

  // Functional transfer first: program order on the issuing thread makes
  // this equivalent to performing it at completion time. Unmaterialized
  // allocations read as zeros, so zero->zero transfers are skipped and
  // zero->data transfers become clears — GB-scale benchmark buffers that
  // are only ever timed never consume real memory.
  mem::Allocation* const src_alloc = mem_.space().find(src);
  mem::Allocation* const dst_alloc = mem_.space().find(dst);
  if (src_alloc == nullptr || !src_alloc->range().contains(src + (bytes - 1))) {
    throw std::out_of_range("memory_async_copy: bad source range at " +
                            src.to_string());
  }
  if (dst_alloc == nullptr || !dst_alloc->range().contains(dst + (bytes - 1))) {
    throw std::out_of_range("memory_async_copy: bad destination range at " +
                            dst.to_string());
  }
  // An injected SDMA engine error aborts the transfer mid-flight: no bytes
  // are delivered, but the engine is occupied for the same interval and the
  // signal completes with an error payload (negative HSA signal value). An
  // injected stall also delivers nothing, but the signal never completes.
  const fault::Injection inj =
      machine_.faults().consult(fault::Site::AsyncCopy, sched().now());
  const bool sdma_error = inj.kind == fault::Kind::CopyError;
  const bool sdma_stall = inj.kind == fault::Kind::SdmaStall;
  if (!sdma_error && !sdma_stall) {
    // Race model: a DMA copy is a host-attributed page access at submit
    // time (the functional transfer happens here, in program order on the
    // issuing thread), not a separate task — so D2H copies of kernel
    // results are safe exactly when the issuing thread acquired the
    // kernel's completion signal first, which is what the detector then
    // checks. Suppressed transfers deliver nothing and record nothing; the
    // resubmission records the accesses.
    if (sim::ConcurrencyHooks* h = sched().hooks()) {
      const std::uint64_t pb = mem_.page_bytes();
      const mem::AddrRange srange{src, bytes};
      const mem::AddrRange drange{dst, bytes};
      h->on_host_pages(srange.first_page(pb),
                       srange.end_page(pb) - srange.first_page(pb),
                       /*is_write=*/false,
                       "dma-copy-read('" + src_alloc->name() + "')");
      h->on_host_pages(drange.first_page(pb),
                       drange.end_page(pb) - drange.first_page(pb),
                       /*is_write=*/true,
                       "dma-copy-write('" + dst_alloc->name() + "')");
    }
    if (src_alloc->materialized()) {
      std::memmove(dst_alloc->translate(dst), src_alloc->translate(src), bytes);
    } else if (dst_alloc->materialized()) {
      std::memset(dst_alloc->translate(dst), 0, bytes);
    }
  }

  const Duration setup = machine_.jittered(c.copy_setup);
  const TimePoint start = sched().now();
  const sim::Interval lock_iv = machine_.runtime_lock().reserve(start, setup);
  sched().advance_to(lock_iv.end);
  // Copies whose endpoints live on different sockets cross the fabric.
  // With the fabric modeled, the transfer runs at the connecting xGMI
  // link's bandwidth (plus its hop latency) and occupies the link, so
  // concurrent cross-socket traffic queues behind it; with the fabric
  // off, the legacy flat bandwidth derating applies.
  const std::uint64_t page = mem_.page_bytes();
  const int src_sock = src_alloc->page_home(src, page);
  const int dst_sock = dst_alloc->page_home(dst, page);
  fabric::Fabric& fab = machine_.fabric();
  Duration engine_time = machine_.jittered(machine_.copy_duration(bytes));
  if (src_sock != dst_sock) {
    if (fab.enabled()) {
      engine_time = max(engine_time, machine_.jittered(fab.transfer_duration(
                                         src_sock, dst_sock, bytes)));
    } else {
      engine_time = engine_time * (1.0 / c.remote_copy_bandwidth_factor);
    }
  }
  const sim::Interval iv =
      machine_.sdma(device).reserve(sched().now(), engine_time);
  TimePoint done = iv.end;
  if (src_sock != dst_sock && fab.enabled()) {
    const sim::Interval link_iv =
        fab.reserve_transfer(src_sock, dst_sock, iv.start, engine_time, bytes);
    done = max(done, link_iv.end);
  }

  Signal sig;
  if (sdma_stall) {
    // The engine wedges on this transfer: it stays occupied, but the
    // completion signal never fires. The watchdog (when configured) aborts
    // the operation after its budget; the caller then resubmits.
    sig = hung_signal("sdma-copy@" + dst.to_string(),
                      trace::FaultEvent::SdmaStallInjected,
                      fault::Site::AsyncCopy, device, dst.value, bytes);
  } else if (sdma_error) {
    sig.complete_error(sched(), done);
    record_fault(trace::FaultRecord{.event = trace::FaultEvent::SdmaErrorInjected,
                                    .device = device,
                                    .time = sched().now(),
                                    .host_base = dst.value,
                                    .bytes = bytes});
  } else {
    sig.set_name("sdma-copy@" + dst.to_string());
    sig.complete(sched(), done);
  }
  record_call(trace::HsaCall::MemoryAsyncCopy, start, setup + engine_time);
  {
    sim::LockGuard lock{trace_mutex_, sched()};
    if (count_in_ledger) {
      ledger_.get(sched()).add_copy(setup + engine_time);
    }
    cptrace_.get(sched()).record(trace::CopyRecord{.device = device,
                                                   .src_socket = src_sock,
                                                   .dst_socket = dst_sock,
                                                   .submit = start,
                                                   .start = iv.start,
                                                   .end = done,
                                                   .bytes = bytes});
    DeviceCounters& dc =
        devstats_.get(sched()).at(static_cast<std::size_t>(device));
    ++dc.copies;
    dc.copy_bytes += bytes;
    if (src_sock != dst_sock) {
      ++dc.cross_socket_copies;
    }
    if (const int tenant = current_tenant_locked(); tenant >= 0) {
      auto& ts = tenantstats_.get(sched());
      if (static_cast<std::size_t>(tenant) < ts.size()) {
        TenantCounters& tc = ts[static_cast<std::size_t>(tenant)];
        ++tc.copies;
        tc.copy_bytes += bytes;
      }
    }
  }
  if (with_handler && !sdma_stall) {
    // Host-side completion callback bookkeeping (a stalled copy's handler
    // never fires).
    const Duration handler_cost = Duration::from_us(1.0);
    record_call(trace::HsaCall::SignalAsyncHandler, done, handler_cost);
  }
  return sig;
}

PrefaultResult Runtime::try_svm_attributes_set_prefault(mem::AddrRange range,
                                                        int device) {
  // The real syscall faults (EFAULT) on addresses outside any mapping;
  // catch the misuse instead of inventing page-table entries for it.
  const mem::Allocation* a = mem_.space().find(range.base);
  if (range.empty() || a == nullptr ||
      !a->range().contains(range.base + (range.bytes - 1))) {
    throw std::invalid_argument(
        "svm_attributes_set: range at " + range.base.to_string() +
        " is not within a live allocation");
  }
  const apu::CostParams& c = machine_.costs();

  const fault::Injection inj =
      machine_.faults().consult(fault::Site::SvmPrefault, sched().now());
  if (inj.kind == fault::Kind::PrefaultHang) {
    // The syscall enters the driver and never returns: the calling thread
    // is stuck inside it until the watchdog (when configured) tears the
    // queue down, or — with no watchdog — the simulation deadlocks with
    // the stuck signal named in the diagnostic. No page table mutates.
    const Duration dur = machine_.jittered_syscall(c.prefault_syscall_base);
    const TimePoint start = sched().now();
    const sim::Interval iv = machine_.driver(device).reserve(start, dur);
    sched().advance_to(iv.end);
    record_call(trace::HsaCall::SvmAttributesSet, start, dur);
    {
      sim::LockGuard lock{trace_mutex_, sched()};
      ledger_.get(sched()).add_prefault(dur);
    }
    Signal stuck = hung_signal("svm-prefault@" + range.base.to_string(),
                               trace::FaultEvent::PrefaultHangInjected,
                               fault::Site::SvmPrefault, device,
                               range.base.value, range.bytes);
    stuck.wait(sched());
    return PrefaultResult{Status::TimedOut, {}};
  }
  if (inj.kind == fault::Kind::Eintr || inj.kind == fault::Kind::Ebusy) {
    // Transient syscall failure: the kernel bails before mutating any page
    // table, so only the base syscall latency is paid (still serialized on
    // the driver lock) and the caller sees EINTR/EBUSY.
    const Duration dur = machine_.jittered_syscall(c.prefault_syscall_base);
    const TimePoint start = sched().now();
    const sim::Interval iv = machine_.driver(device).reserve(start, dur);
    sched().advance_to(iv.end);
    record_call(trace::HsaCall::SvmAttributesSet, start, dur);
    const bool eintr = inj.kind == fault::Kind::Eintr;
    record_fault(trace::FaultRecord{
        .event = eintr ? trace::FaultEvent::EintrInjected
                       : trace::FaultEvent::EbusyInjected,
        .device = device,
        .time = sched().now(),
        .host_base = range.base.value,
        .bytes = range.bytes});
    {
      sim::LockGuard lock{trace_mutex_, sched()};
      ledger_.get(sched()).add_prefault(dur);
    }
    return PrefaultResult{eintr ? Status::Interrupted : Status::Busy, {}};
  }

  const mem::PrefaultOutcome out = mem_.prefault(range, device);
  // DDR-spilled pages the prefault reached promote back to HBM (paid like
  // a migration, per page); spans that re-homogenized collapse back to
  // 2 MB mappings (khugepaged work, charged here because the prefault is
  // what made the span collapsible).
  const Duration dur = machine_.jittered_syscall(
      c.prefault_syscall_base +
      c.prefault_insert_per_page * static_cast<double>(out.inserted) +
      c.prefault_populate_per_page * static_cast<double>(out.materialized) +
      c.prefault_check_per_page * static_cast<double>(out.present) +
      c.promote_per_page * static_cast<double>(out.promoted) +
      c.thp_collapse_per_span * static_cast<double>(out.collapsed));
  // The syscall serializes on the owning socket's driver/page-table lock.
  const TimePoint start = sched().now();
  const sim::Interval iv = machine_.driver(device).reserve(start, dur);
  sched().advance_to(iv.end);
  record_call(trace::HsaCall::SvmAttributesSet, start, dur);
  if (out.promoted > 0) {
    record_fault(trace::FaultRecord{.event = trace::FaultEvent::PagesPromoted,
                                    .device = device,
                                    .time = sched().now(),
                                    .host_base = range.base.value,
                                    .bytes = out.promoted * mem_.page_bytes()});
  }
  if (out.collapsed > 0) {
    record_fault(trace::FaultRecord{.event = trace::FaultEvent::ThpCollapsed,
                                    .device = device,
                                    .time = sched().now(),
                                    .host_base = range.base.value,
                                    .bytes = out.collapsed});
  }
  sim::LockGuard lock{trace_mutex_, sched()};
  ledger_.get(sched()).add_prefault(dur);
  if (out.promoted > 0) {
    devstats_.get(sched())
        .at(static_cast<std::size_t>(device))
        .promoted_pages += out.promoted;
  }
  return PrefaultResult{Status::Ok, out};
}

mem::PrefaultOutcome Runtime::svm_attributes_set_prefault(mem::AddrRange range,
                                                          int device) {
  const PrefaultResult r = try_svm_attributes_set_prefault(range, device);
  if (!r.ok()) {
    throw HsaError("svm_attributes_set: prefault at " +
                   range.base.to_string() + " failed: " + to_string(r.status));
  }
  return r.outcome;
}

std::uint64_t Runtime::migrate_pages(mem::AddrRange range, int device) {
  const apu::CostParams& c = machine_.costs();
  const mem::Allocation* const a = mem_.space().find(range.base);
  if (a == nullptr) {
    throw std::invalid_argument("migrate_pages: no allocation at " +
                                range.base.to_string());
  }
  const int from = a->home_socket();
  const std::uint64_t moved = mem_.migrate_pages(range, device);
  const TimePoint start = sched().now();
  if (moved == 0) {
    // Nothing physically moves (already home there, or a pending
    // first-touch home just resolved): only the attribute-set syscall
    // round trip is paid.
    const Duration dur = machine_.jittered_syscall(c.prefault_syscall_base);
    const sim::Interval iv = machine_.driver(device).reserve(start, dur);
    sched().advance_to(iv.end);
    record_call(trace::HsaCall::SvmAttributesSet, start, dur);
    return 0;
  }
  // Per-page unmap on the old home, data movement across the fabric, then
  // per-page remap on the new home — each driver phase serialized on its
  // socket's driver lock, so a migration contends with both sockets'
  // fault servicing and prefault syscalls.
  const Duration per_side =
      machine_.jittered(c.page_migrate_per_page * static_cast<double>(moved));
  const sim::Interval s_iv = machine_.driver(from).reserve(start, per_side);
  const std::uint64_t bytes = moved * mem_.page_bytes();
  fabric::Fabric& fab = machine_.fabric();
  sim::Interval x_iv{s_iv.end, s_iv.end};
  if (fab.enabled()) {
    x_iv = fab.reserve_transfer(
        from, device, s_iv.end,
        machine_.jittered(fab.transfer_duration(from, device, bytes)), bytes);
  } else if (from != device) {
    x_iv.end = s_iv.end + machine_.jittered(machine_.copy_duration(bytes) *
                                            (1.0 / c.remote_copy_bandwidth_factor));
  }
  const sim::Interval d_iv = machine_.driver(device).reserve(x_iv.end, per_side);
  sched().advance_to(d_iv.end);
  record_call(trace::HsaCall::SvmAttributesSet, start, d_iv.end - start);
  {
    sim::LockGuard lock{trace_mutex_, sched()};
    ledger_.get(sched()).add_prefault(d_iv.end - start);
    devstats_.get(sched()).at(static_cast<std::size_t>(device)).migrated_pages +=
        moved;
  }
  if (machine_.log().enabled()) {
    machine_.log_add(sched().now(), "hsa",
                     "migrate " + std::to_string(moved) + " page(s) " +
                         std::to_string(from) + "->" + std::to_string(device));
  }
  return moved;
}

Signal Runtime::dispatch_kernel(const KernelLaunch& launch, int host_thread,
                                sim::TimePoint not_before,
                                std::span<const Signal> depends) {
  const apu::CostParams& c = machine_.costs();
  const bool xnack = machine_.env().hsa_xnack;

  // CPU-side packet submission, serialized on the shared runtime lock.
  const Duration dispatch_cost = machine_.jittered(c.kernel_dispatch_cpu);
  const TimePoint submit = sched().now();
  const sim::Interval lock_iv =
      machine_.runtime_lock().reserve(submit, dispatch_cost);
  sched().advance_to(lock_iv.end);
  record_call(trace::HsaCall::QueueDispatch, submit, dispatch_cost);
  const TimePoint dispatched = max(sched().now(), not_before);

  // An injected queue error hangs the dispatch before the kernel executes:
  // nothing runs, no page table mutates, and the completion signal never
  // fires. The attempt is all-or-nothing so a later replay reproduces the
  // fault-free run's functional effects exactly once.
  const fault::Injection kinj =
      machine_.faults().consult(fault::Site::KernelLaunch, sched().now());
  if (kinj.kind == fault::Kind::KernelHang) {
    return hung_signal("kernel:" + launch.name,
                       trace::FaultEvent::KernelHangInjected,
                       fault::Site::KernelLaunch, launch.device, 0, 0);
  }

  // -- memory-pressure machinery, serviced on the dispatch path ------------
  // The driver samples its access counters and acts on them when kernels
  // run — that is when the GPU's interrupt handler is already live. All the
  // work below is driver work: its cost folds into the kernel's fault-stall
  // term (reserved on the driver lock further down).
  Duration pressure_time;
  const bool sampling =
      machine_.env().ompx_apu_automigrate.enabled ||
      machine_.env().ompx_apu_pressure == apu::PressureMode::Watermarks;
  if (sampling && machine_.is_apu()) {
    pressure_time = pressure_time + c.counter_sample;
    // An injected counter_loss drops the driver's access-counter state:
    // every page reads cold again, stalling pending migration decisions.
    const fault::Injection cinj =
        machine_.faults().consult(fault::Site::AccessCounter, sched().now());
    if (cinj.kind == fault::Kind::CounterLoss) {
      mem_.counter_loss();
      record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::CounterLossInjected,
                             .device = launch.device,
                             .time = sched().now(),
                             .host_base = 0,
                             .bytes = 0});
    }
  }
  if (machine_.env().ompx_apu_automigrate.enabled && machine_.is_apu()) {
    // One access-counter migration per dispatch: the hottest page whose
    // remote-touch streak crossed the threshold moves to the touching
    // socket. An injected migration_stall inflates the driver work (page
    // locked, TLB shootdown storms, retried unmaps).
    const mem::MigrationCandidate cand = mem_.take_migration_candidate(
        machine_.env().ompx_apu_automigrate.threshold);
    if (cand.valid) {
      const std::uint64_t pb = mem_.page_bytes();
      const mem::AddrRange pr{mem::VirtAddr{cand.page * pb}, pb};
      const std::uint64_t moved = mem_.migrate_pages(pr, cand.to_socket);
      if (moved > 0) {
        Duration mdur = machine_.jittered(c.page_migrate_per_page * 2.0 *
                                          static_cast<double>(moved));
        const fault::Injection minj = machine_.faults().consult(
            fault::Site::AutoMigrate, sched().now());
        if (minj.kind == fault::Kind::MigrationStall) {
          mdur = mdur * minj.factor;
          record_fault(trace::FaultRecord{
              .event = trace::FaultEvent::MigrationStallInjected,
              .device = launch.device,
              .time = sched().now(),
              .host_base = cand.page * pb,
              .bytes = moved * pb,
              .attempt = 0,
              .factor = minj.factor});
        }
        pressure_time = pressure_time + mdur;
        record_fault(
            trace::FaultRecord{.event = trace::FaultEvent::AutoMigrated,
                               .device = cand.to_socket,
                               .time = sched().now(),
                               .host_base = cand.page * pb,
                               .bytes = moved * pb});
        sim::LockGuard lock{trace_mutex_, sched()};
        devstats_.get(sched())
            .at(static_cast<std::size_t>(cand.to_socket))
            .migrated_pages += moved;
      }
    }
  }

  // Page-fault accounting for every buffer the kernel touches. Faults on
  // CPU-resident pages only mirror the translation; faults on untouched
  // pages additionally materialize them (GPU-side first touch). The same
  // walk tallies remote bytes — pages homed on other sockets that this
  // kernel reaches over the fabric — and, per remote home socket, the
  // byte volume for link occupancy below.
  std::uint64_t faults = 0;
  std::uint64_t non_resident = 0;
  std::uint64_t promoted = 0;
  std::uint64_t split_faulted = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t remote_bytes = 0;
  double worst_link_bw = 0.0;  // slowest link crossed, bytes/s
  const std::uint64_t page = mem_.page_bytes();
  fabric::Fabric& fab = machine_.fabric();
  std::vector<std::uint64_t> remote_by_home;
  if (fab.enabled()) {
    remote_by_home.assign(static_cast<std::size_t>(fab.sockets()), 0);
  }
  for (const BufferAccess& b : launch.buffers) {
    mem::Allocation* const a = mem_.space().find(b.addr);
    total_bytes += b.bytes;
    if (a != nullptr) {
      const std::uint64_t rp = a->remote_pages(b.range(), launch.device, page);
      if (rp > 0) {
        const std::uint64_t pages = b.range().page_count(page);
        const std::uint64_t rb = std::max<std::uint64_t>(
            pages > 0 ? b.bytes * rp / pages : b.bytes, 1);
        remote_bytes += rb;
        if (fab.enabled()) {
          if (a->placement() == mem::Placement::Interleaved) {
            // Striped traffic spreads across every link; charge the wide
            // width for the penalty and skip per-link occupancy.
            const double bw = fab.config().wide_bandwidth_bytes_per_s;
            if (worst_link_bw == 0.0 || bw < worst_link_bw) {
              worst_link_bw = bw;
            }
          } else {
            const double bw =
                fab.link(a->home_socket(), launch.device).bandwidth_bytes_per_s;
            if (bw > 0.0 && (worst_link_bw == 0.0 || bw < worst_link_bw)) {
              worst_link_bw = bw;
            }
            remote_by_home.at(static_cast<std::size_t>(a->home_socket())) += rb;
          }
        }
      }
    }
    const std::uint64_t absent =
        mem_.gpu_absent_pages(b.range(), launch.device, a);
    if (absent == 0) {
      continue;
    }
    if (!xnack) {
      throw GpuMemoryFault(
          "kernel '" + launch.name + "' touches " + std::to_string(absent) +
          " unmapped page(s) at " + b.addr.to_string() +
          " with XNACK disabled");
    }
    const mem::FaultOutcome fo = mem_.gpu_fault_in(b.range(), launch.device);
    faults += fo.faulted;
    non_resident += fo.non_resident;
    promoted += fo.promoted;
    split_faulted += fo.split_faulted;
  }
  Duration fault_time;
  if (faults > 0) {
    fault_time = machine_.jittered(
        machine_.fault_service_duration(true) *
            static_cast<double>(faults - non_resident) +
        machine_.fault_service_duration(false) *
            static_cast<double>(non_resident));
    // A replay storm (interrupt-handler contention amplifying XNACK retry
    // rounds) multiplies the fault-servicing stall. A livelock never
    // converges at all: fault servicing replays forever and the kernel's
    // completion signal never fires (the pages faulted in above stay in —
    // a replay finds them resident and skips this consult entirely).
    const fault::Injection inj =
        machine_.faults().consult(fault::Site::XnackReplay, sched().now());
    if (inj.kind == fault::Kind::XnackLivelock) {
      return hung_signal("kernel:" + launch.name,
                         trace::FaultEvent::XnackLivelockInjected,
                         fault::Site::XnackReplay, launch.device, 0, faults);
    }
    if (inj.kind == fault::Kind::ReplayStorm) {
      fault_time = fault_time * inj.factor;
      record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::ReplayStormInjected,
                             .device = launch.device,
                             .time = sched().now(),
                             .host_base = 0,
                             .bytes = faults,
                             .attempt = 0,
                             .factor = inj.factor});
    }
  }

  // An injected thp_split_storm fragments the kernel's huge spans under it
  // (memory compaction racing the fault handler): subsequent TLB reach and
  // fault servicing on those spans degrade to 4 KB pricing.
  std::uint64_t storm_split = 0;
  const fault::Injection tinj =
      machine_.faults().consult(fault::Site::ThpSplit, sched().now());
  if (tinj.kind == fault::Kind::ThpSplitStorm) {
    for (const BufferAccess& b : launch.buffers) {
      storm_split += mem_.thp_split_range(b.range());
    }
    record_fault(
        trace::FaultRecord{.event = trace::FaultEvent::ThpSplitStormInjected,
                           .device = launch.device,
                           .time = sched().now(),
                           .host_base = 0,
                           .bytes = storm_split});
    if (storm_split > 0) {
      record_fault(trace::FaultRecord{.event = trace::FaultEvent::ThpSplit,
                                      .device = launch.device,
                                      .time = sched().now(),
                                      .host_base = 0,
                                      .bytes = storm_split});
      pressure_time =
          pressure_time +
          c.thp_split_per_span * static_cast<double>(storm_split);
    }
  }

  // Pressure pricing of the fault walk: DDR promotions pay migration-like
  // per-page work, and faults landing in split THP spans replay at 4 KB
  // granularity (the 2 MB mapping is gone), inflating their service cost.
  if (promoted > 0) {
    pressure_time =
        pressure_time +
        machine_.jittered(c.promote_per_page * static_cast<double>(promoted));
    record_fault(trace::FaultRecord{.event = trace::FaultEvent::PagesPromoted,
                                    .device = launch.device,
                                    .time = sched().now(),
                                    .host_base = 0,
                                    .bytes = promoted * page});
  }
  if (split_faulted > 0) {
    pressure_time =
        pressure_time +
        machine_.fault_service_duration(true) *
            (static_cast<double>(split_faulted) *
             (c.thp_split_fault_factor - 1.0));
  }

  // Watermark check: fault-in charged new HBM pages; when occupancy tops
  // the high watermark the driver reclaims down to the low one (one
  // bounded batch per dispatch — reclaim must not stall kernels longer
  // than the batch allows).
  if (machine_.is_apu() &&
      machine_.env().ompx_apu_pressure == apu::PressureMode::Watermarks) {
    const apu::DegradeParams& dg = machine_.degrade_params();
    const std::uint64_t cap = mem_.hbm_capacity();
    const auto high = static_cast<std::uint64_t>(
        dg.evict_high_watermark * static_cast<double>(cap));
    if (mem_.hbm_used(launch.device) > high) {
      const auto low = static_cast<std::uint64_t>(
          dg.evict_low_watermark * static_cast<double>(cap));
      const ReclaimCharge rc =
          reclaim_to(launch.device, low, dg.evict_max_batch_pages);
      pressure_time = pressure_time + rc.cost;
    }
  }

  // TLB behaviour of the streamed ranges. Split huge spans cost extra
  // walks: a span that fragmented to 4 KB needs many entries where one
  // 2 MB entry used to cover it, shrinking effective TLB reach.
  std::uint64_t tlb_misses = 0;
  std::uint64_t split_spans = 0;
  for (const BufferAccess& b : launch.buffers) {
    tlb_misses += mem_.tlb_access(b.range(), launch.device).misses;
    split_spans += mem_.split_spans(b.range());
  }
  const Duration tlb_time =
      c.tlb_walk * static_cast<double>(tlb_misses) +
      c.tlb_walk * (static_cast<double>(split_spans) *
                    (c.thp_split_tlb_factor - 1.0));

  // Fault servicing holds the driver lock; queueing delay behind other
  // driver work (e.g. another thread's prefault syscalls) extends the
  // kernel's stall. Pressure work (counter sampling, auto-migration,
  // promotions, reclaim) is driver work too and shares the reservation.
  Duration fault_term;
  const Duration driver_time = fault_time + pressure_time;
  if (!driver_time.is_zero()) {
    const sim::Interval di =
        machine_.driver(launch.device).reserve(dispatched, driver_time);
    fault_term = di.end - dispatched;
  }

  // XNACK-enabled processes pay a small uniform kernel-time penalty
  // (retry-capable code generation), independent of any faults. Kernels
  // whose data lives on another socket's HBM additionally pay the
  // cross-socket fabric penalty: with the fabric modeled it scales with
  // the fraction of bytes that are remote and the width of the slowest
  // link crossed (narrow diagonal hops hurt more than wide direct ones);
  // with the fabric off the legacy flat multiplier applies.
  Duration base_compute = launch.compute;
  if (xnack) {
    base_compute = base_compute * c.xnack_kernel_slowdown;
  }
  if (remote_bytes > 0) {
    if (fab.enabled()) {
      const double frac = total_bytes > 0
                              ? static_cast<double>(remote_bytes) /
                                    static_cast<double>(total_bytes)
                              : 1.0;
      const double width =
          worst_link_bw > 0.0 ? c.xgmi_wide_bandwidth_bytes_per_s / worst_link_bw
                              : 1.0;
      base_compute = base_compute *
                     (1.0 + (c.remote_memory_penalty - 1.0) * frac * width);
    } else {
      base_compute = base_compute * c.remote_memory_penalty;
    }
  }
  const Duration compute = machine_.jittered(base_compute);
  const Duration launch_lat = machine_.jittered(c.kernel_launch_latency);
  const Duration total = launch_lat + compute + tlb_time + fault_term;
  const sim::Interval gi = machine_.gpu(launch.device).reserve(dispatched, total);

  // Remote-streaming kernels occupy the connecting links for their remote
  // bytes' serialization time, so concurrent copies queue behind them.
  // Link queueing does not extend the kernel itself — the penalty
  // multiplier above is its cost.
  if (fab.enabled()) {
    for (std::size_t h = 0; h < remote_by_home.size(); ++h) {
      if (remote_by_home[h] == 0) {
        continue;
      }
      const int home = static_cast<int>(h);
      fab.reserve_transfer(
          home, launch.device, gi.start,
          fab.transfer_duration(home, launch.device, remote_by_home[h]),
          remote_by_home[h]);
    }
  }

  // Race model: the kernel is a device-side task forked from the
  // dispatching thread's clock, with an extra happens-before edge from
  // each in-queue dependence signal (target_nowait chains on `not_before`
  // without a host-side wait, so those edges exist only here). Every
  // buffer the kernel streams is a page-granularity access attributed to
  // the task; the task's clock is released into the completion signal so
  // waiters (and later D2H copies) are ordered after it. Hung dispatches
  // (kernel_hang, xnack_livelock) return above having executed nothing,
  // so they deliberately record no task and no accesses.
  int race_task = -1;
  if (sim::ConcurrencyHooks* h = sched().hooks()) {
    race_task = h->on_task_begin("kernel:" + launch.name, launch.device);
    for (const Signal& dep : depends) {
      h->on_task_acquire(race_task, dep.id());
    }
    const std::uint64_t pb = mem_.page_bytes();
    for (const BufferAccess& b : launch.buffers) {
      const mem::Allocation* a = mem_.space().find(b.addr);
      const std::string site =
          "kernel:" + launch.name + "(" +
          (a != nullptr ? a->name() : std::string{"?"}) + ")";
      const mem::AddrRange r = b.range();
      h->on_task_pages(race_task, r.first_page(pb),
                       r.end_page(pb) - r.first_page(pb),
                       /*is_write=*/b.access != Access::Read, site);
    }
  }

  // Functional execution.
  if (launch.body) {
    KernelContext ctx{mem_.space()};
    launch.body(ctx);
  }

  {
    // Scoped tightly: signal completion below can hand the CPU to a waiter
    // and must not happen while the trace mutex is held.
    sim::LockGuard trace_lock{trace_mutex_, sched()};
    if (faults > 0) {
      ledger_.get(sched()).add_first_touch(fault_term, faults);
    }
    ktrace_.get(sched()).record(trace::KernelRecord{
        .name = launch.name,
        .host_thread = host_thread,
        .device = launch.device,
        .dispatch = dispatched,
        .start = gi.start,
        .end = gi.end,
        .compute = compute,
        .fault_stall = fault_term,
        .tlb_stall = tlb_time,
        .page_faults = faults,
        .tlb_misses = tlb_misses,
        .remote_bytes = remote_bytes,
    });
    DeviceCounters& dc =
        devstats_.get(sched()).at(static_cast<std::size_t>(launch.device));
    ++dc.kernels;
    dc.page_faults += faults;
    dc.tlb_misses += tlb_misses;
    dc.promoted_pages += promoted;
    if (remote_bytes > 0) {
      ++dc.remote_kernels;
    }
    if (const int tenant = current_tenant_locked(); tenant >= 0) {
      auto& ts = tenantstats_.get(sched());
      if (static_cast<std::size_t>(tenant) < ts.size()) {
        TenantCounters& tc = ts[static_cast<std::size_t>(tenant)];
        ++tc.kernels;
        tc.page_faults += faults;
      }
    }
  }

  Signal sig;
  sig.set_name("kernel:" + launch.name);
  if (race_task >= 0) {
    if (sim::ConcurrencyHooks* h = sched().hooks()) {
      h->on_task_end(race_task, sig.id());
    }
  }
  sig.complete(sched(), gi.end);
  return sig;
}

void Runtime::run_kernel(const KernelLaunch& launch, int host_thread) {
  signal_wait_scacquire(dispatch_kernel(launch, host_thread));
}

}  // namespace zc::hsa
