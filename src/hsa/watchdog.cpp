#include "zc/hsa/watchdog.hpp"

#include <algorithm>

#include "zc/race/api.hpp"

namespace zc::hsa {

using sim::Duration;
using sim::TimePoint;

// The registry (`watched_`, `running_`, `trips_`) is shared between every
// registering thread and the watchdog fiber, whose timer wakeup path has no
// sync-object edge back to the registrars. A real driver orders these with
// an internal watchdog lock; the simulator models that lock as a detector
// monitor keyed on the Watchdog itself. Each bracketed section is pure
// state — no yields, no virtual-time advance — so the model stays sound.

void Watchdog::watch(Signal signal, fault::Site site, int device,
                     std::string what) {
  if (!config_.enabled() || signal.is_complete()) {
    // Healthy async work is bound to a completion time at submit; only a
    // hung operation's signal is still unbound here.
    return;
  }
  sim::Scheduler& sched = machine_.sched();
  bool start = false;
  {
    race::MonitorGuard mm{sched, this};
    race::on_write(sched, &watched_, sizeof(watched_), "Watchdog::watched_");
    watched_.push_back(Watched{std::move(signal), site, device,
                               std::move(what), sched.now() + config_.budget});
    race::on_write(sched, &running_, sizeof(running_), "Watchdog::running_");
    start = !running_;
    running_ = true;
  }
  if (start) {
    sched.spawn("watchdog", [this] { loop(); });
  } else {
    // The fiber may be asleep until a later deadline; re-arm it.
    wake_.notify_all(sched, sched.now());
  }
}

void Watchdog::loop() {
  sim::Scheduler& sched = machine_.sched();
  while (true) {
    TimePoint earliest = TimePoint::max();
    {
      race::MonitorGuard mm{sched, this};
      race::on_write(sched, &watched_, sizeof(watched_), "Watchdog::watched_");
      // Drop entries whose operation completed (normally, or via an abort
      // a previous iteration performed).
      std::erase_if(watched_,
                    [](const Watched& w) { return w.signal.is_complete(); });
      if (watched_.empty()) {
        break;
      }
      for (const Watched& w : watched_) {
        earliest = min(earliest, w.deadline);
      }
    }
    if (sched.now() < earliest) {
      if (wake_.wait_for(sched, earliest - sched.now(), "Watchdog(wake)")) {
        continue;  // new registration; recompute the earliest deadline
      }
    }
    // The deadline fired: abort every overdue, still-incomplete operation.
    // Index loop over a copied entry — trip() advances time and may yield,
    // letting new registrations reallocate the vector under us (hence the
    // per-iteration bracket: the copy is taken inside, the trip outside).
    for (std::size_t i = 0;; ++i) {
      bool overdue = false;
      Watched entry;
      {
        race::MonitorGuard mm{sched, this};
        race::on_read(sched, &watched_, sizeof(watched_),
                      "Watchdog::watched_");
        if (i >= watched_.size()) {
          break;
        }
        overdue = watched_[i].deadline <= sched.now() &&
                  !watched_[i].signal.is_complete();
        if (overdue) {
          entry = watched_[i];
        }
      }
      if (overdue) {
        trip(entry);
      }
    }
  }
  {
    race::MonitorGuard mm{sched, this};
    race::on_write(sched, &running_, sizeof(running_), "Watchdog::running_");
    running_ = false;
  }
}

void Watchdog::trip(const Watched& w) {
  sim::Scheduler& sched = machine_.sched();
  const apu::CostParams& c = machine_.costs();
  // Tearing down and rebuilding the wedged queue is driver work on the
  // operation's device; it queues behind any in-flight driver activity.
  const Duration dur = machine_.jittered(c.queue_teardown + c.queue_rebuild);
  const sim::Interval iv = machine_.driver(w.device).reserve(sched.now(), dur);
  sched.advance_to(iv.end);
  {
    // Tight bracket: the driver reserve above advances virtual time and
    // must stay outside any monitor section.
    race::MonitorGuard mm{sched, this};
    race::on_write(sched, &trips_, sizeof(trips_), "Watchdog::trips_");
    ++trips_;
  }
  if (record_) {
    record_(trace::FaultRecord{.event = trace::FaultEvent::WatchdogTrip,
                               .device = w.device,
                               .time = sched.now(),
                               .host_base = 0,
                               .bytes = 0});
  }
  if (machine_.log().enabled()) {
    machine_.log_add(sched.now(), "watchdog",
                     "trip: " + w.what + " at site " +
                         std::string{fault::to_string(w.site)} + " dev" +
                         std::to_string(w.device));
  }
  if (listener_) {
    listener_(w.device, sched.now());
  }
  // Waking the waiters last: they observe the trip fully recorded.
  Signal signal = w.signal;
  signal.complete_abort(sched, sched.now());
}

}  // namespace zc::hsa
