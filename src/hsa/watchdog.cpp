#include "zc/hsa/watchdog.hpp"

#include <algorithm>

namespace zc::hsa {

using sim::Duration;
using sim::TimePoint;

void Watchdog::watch(Signal signal, fault::Site site, int device,
                     std::string what) {
  if (!config_.enabled() || signal.is_complete()) {
    // Healthy async work is bound to a completion time at submit; only a
    // hung operation's signal is still unbound here.
    return;
  }
  sim::Scheduler& sched = machine_.sched();
  watched_.push_back(Watched{std::move(signal), site, device, std::move(what),
                             sched.now() + config_.budget});
  if (!running_) {
    running_ = true;
    sched.spawn("watchdog", [this] { loop(); });
  } else {
    // The fiber may be asleep until a later deadline; re-arm it.
    wake_.notify_all(sched, sched.now());
  }
}

void Watchdog::loop() {
  sim::Scheduler& sched = machine_.sched();
  while (true) {
    // Drop entries whose operation completed (normally, or via an abort a
    // previous iteration performed).
    std::erase_if(watched_,
                  [](const Watched& w) { return w.signal.is_complete(); });
    if (watched_.empty()) {
      break;
    }
    TimePoint earliest = TimePoint::max();
    for (const Watched& w : watched_) {
      earliest = min(earliest, w.deadline);
    }
    if (sched.now() < earliest) {
      if (wake_.wait_for(sched, earliest - sched.now(), "Watchdog(wake)")) {
        continue;  // new registration; recompute the earliest deadline
      }
    }
    // The deadline fired: abort every overdue, still-incomplete operation.
    // Index loop over a copied entry — trip() advances time and may yield,
    // letting new registrations reallocate the vector under us.
    for (std::size_t i = 0; i < watched_.size(); ++i) {
      if (watched_[i].deadline <= sched.now() &&
          !watched_[i].signal.is_complete()) {
        const Watched overdue = watched_[i];
        trip(overdue);
      }
    }
  }
  running_ = false;
}

void Watchdog::trip(const Watched& w) {
  sim::Scheduler& sched = machine_.sched();
  const apu::CostParams& c = machine_.costs();
  // Tearing down and rebuilding the wedged queue is driver work on the
  // operation's device; it queues behind any in-flight driver activity.
  const Duration dur = machine_.jittered(c.queue_teardown + c.queue_rebuild);
  const sim::Interval iv = machine_.driver(w.device).reserve(sched.now(), dur);
  sched.advance_to(iv.end);
  ++trips_;
  if (record_) {
    record_(trace::FaultRecord{.event = trace::FaultEvent::WatchdogTrip,
                               .device = w.device,
                               .time = sched.now(),
                               .host_base = 0,
                               .bytes = 0});
  }
  if (machine_.log().enabled()) {
    machine_.log().add(sched.now(), "watchdog",
                       "trip: " + w.what + " at site " +
                           std::string{fault::to_string(w.site)} + " dev" +
                           std::to_string(w.device));
  }
  if (listener_) {
    listener_(w.device, sched.now());
  }
  // Waking the waiters last: they observe the trip fully recorded.
  Signal signal = w.signal;
  signal.complete_abort(sched, sched.now());
}

}  // namespace zc::hsa
