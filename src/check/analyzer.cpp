#include "zc/check/analyzer.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace zc::check {
namespace {

// ---------------------------------------------------------------------------
// Interval-set helpers. A `Ranges` is kept sorted by base, disjoint, and
// merged; all the abstract state below (ever-mapped unions, device-dirty and
// host-dirty sets) is expressed in these terms.
// ---------------------------------------------------------------------------

using Ranges = std::vector<mem::AddrRange>;

[[nodiscard]] std::uint64_t end_of(mem::AddrRange r) {
  return r.base.value + r.bytes;
}

void add_range(Ranges& set, mem::AddrRange r) {
  if (r.bytes == 0) {
    return;
  }
  std::uint64_t lo = r.base.value;
  std::uint64_t hi = end_of(r);
  Ranges out;
  out.reserve(set.size() + 1);
  for (const mem::AddrRange& e : set) {
    if (end_of(e) < lo || e.base.value > hi) {
      out.push_back(e);  // fully outside (adjacency merges)
    } else {
      lo = std::min(lo, e.base.value);
      hi = std::max(hi, end_of(e));
    }
  }
  out.push_back(mem::AddrRange{mem::VirtAddr{lo}, hi - lo});
  std::sort(out.begin(), out.end(),
            [](const mem::AddrRange& a, const mem::AddrRange& b) {
              return a.base.value < b.base.value;
            });
  set = std::move(out);
}

void sub_range(Ranges& set, mem::AddrRange r) {
  if (r.bytes == 0) {
    return;
  }
  const std::uint64_t lo = r.base.value;
  const std::uint64_t hi = end_of(r);
  Ranges out;
  out.reserve(set.size() + 1);
  for (const mem::AddrRange& e : set) {
    if (end_of(e) <= lo || e.base.value >= hi) {
      out.push_back(e);
      continue;
    }
    if (e.base.value < lo) {
      out.push_back(mem::AddrRange{e.base, lo - e.base.value});
    }
    if (end_of(e) > hi) {
      out.push_back(mem::AddrRange{mem::VirtAddr{hi}, end_of(e) - hi});
    }
  }
  set = std::move(out);
}

[[nodiscard]] bool covers(const Ranges& set, mem::AddrRange r) {
  if (r.bytes == 0) {
    return true;
  }
  for (const mem::AddrRange& e : set) {
    if (mem::range_covers(e, r)) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool overlaps(const Ranges& set, mem::AddrRange r) {
  for (const mem::AddrRange& e : set) {
    if (mem::ranges_overlap(e, r)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-buffer reference scanning, shared by the analyzer tiers and the race
// partition. Every verdict below is keyed by the buffer *label*, never by
// addresses, so outputs are bit-identical across stress seeds.
// ---------------------------------------------------------------------------

[[nodiscard]] bool op_is_publish(const IrOp& op) {
  switch (op.kind) {
    case OpKind::DataBegin:
    case OpKind::EnterData:
    case OpKind::Kernel:
    case OpKind::UpdateTo:
      return true;
    default:
      return false;
  }
}

/// Invoke `fn(range)` for every host range the op references.
template <typename Fn>
void for_each_ref(const IrOp& op, Fn&& fn) {
  for (const IrMap& m : op.maps) {
    fn(m.range);
  }
  for (const IrUse& u : op.uses) {
    fn(u.range);
  }
  if (op.range.bytes != 0) {
    fn(op.range);
  }
  if (op.src.bytes != 0) {
    fn(op.src);
  }
}

struct BufRefs {
  const IrBuffer* buf = nullptr;
  std::set<std::string> threads;   ///< referencing thread names
  bool nowait = false;             ///< any nowait op references it
  bool dma_or_migrate = false;     ///< Memcpy / Migrate / DeviceFree touch it
  bool host_free = false;
  bool device_writes = false;      ///< From/ToFrom clause, W/RW use, UpdateFrom
  /// Per thread: last host-write ordinal and first publish ordinal (both
  /// per-thread program order, hence seed-invariant).
  struct PerThread {
    bool has_host_write = false;
    std::uint64_t last_host_write = 0;
    bool has_publish = false;
    std::uint64_t first_publish = 0;
  };
  std::map<std::string, PerThread> per_thread;
};

[[nodiscard]] std::map<std::string, BufRefs> scan_refs(const OffloadIR& ir) {
  std::map<std::string, BufRefs> refs;
  for (const IrBuffer& b : ir.buffers) {
    refs[b.label].buf = &b;
  }
  for (const ThreadStream& t : ir.threads) {
    for (const IrOp& op : t.ops) {
      std::set<const IrBuffer*> touched;
      for_each_ref(op, [&](mem::AddrRange r) {
        if (const IrBuffer* b = ir.find(r.base)) {
          touched.insert(b);
        }
      });
      for (const IrBuffer* b : touched) {
        BufRefs& br = refs[b->label];
        br.threads.insert(t.thread);
        br.nowait |= op.nowait;
        BufRefs::PerThread& pt = br.per_thread[t.thread];
        switch (op.kind) {
          case OpKind::HostTouch:
            pt.has_host_write = true;
            pt.last_host_write = op.ordinal;
            break;
          case OpKind::HostFree:
            br.host_free = true;
            break;
          case OpKind::Memcpy:
          case OpKind::Migrate:
          case OpKind::DeviceFree:
            br.dma_or_migrate = true;
            break;
          case OpKind::UpdateFrom:
            br.device_writes = true;
            break;
          default:
            break;
        }
        for (const IrMap& m : op.maps) {
          if (ir.find(m.range.base) == b && omp::copies_to_host(m.type)) {
            br.device_writes = true;  // d2h copy-back writes host pages
          }
        }
        for (const IrUse& u : op.uses) {
          if (ir.find(u.range.base) == b && u.access != hsa::Access::Read) {
            br.device_writes = true;
          }
        }
        if (op_is_publish(op) && !pt.has_publish) {
          pt.has_publish = true;
          pt.first_publish = op.ordinal;
        }
      }
    }
  }
  return refs;
}

// ---------------------------------------------------------------------------
// Tier B: precise abstract-PresentTable walk for single-owner buffers.
// ---------------------------------------------------------------------------

struct AbsEntry {
  mem::AddrRange range;
  std::uint64_t refcount = 1;
  bool copies_in = false;   ///< established by a to/tofrom clause
  bool copies_out = false;  ///< carries a from/tofrom obligation
};

struct TierB {
  const OffloadIR& ir;
  const IrBuffer& buf;
  omp::RuntimeConfig config;
  std::vector<CheckFinding>& out;

  std::map<int, std::vector<AbsEntry>> tables;  ///< per-device entries
  Ranges device_dirty;  ///< kernel-written, not yet copied back
  Ranges host_dirty;    ///< host-written while a to/tofrom entry was live

  void emit(CheckKind kind, const std::string& thread, const IrOp& op,
            mem::AddrRange range, std::string message) {
    CheckFinding f;
    f.kind = kind;
    f.thread = thread;
    f.op_index = op.ordinal;
    f.buffer = ir.describe(range);
    f.device = op.device;
    f.message = std::move(message);
    out.push_back(std::move(f));
  }

  [[nodiscard]] bool always_present() const {
    return buf.kind != BufKind::Host;
  }

  [[nodiscard]] bool present_on(int device, mem::AddrRange r) const {
    if (always_present()) {
      return true;
    }
    auto it = tables.find(device);
    if (it == tables.end()) {
      return false;
    }
    Ranges u;
    for (const AbsEntry& e : it->second) {
      add_range(u, e.range);
    }
    return covers(u, r);
  }

  [[nodiscard]] bool present_elsewhere(int device, mem::AddrRange r) const {
    for (const auto& [d, entries] : tables) {
      if (d == device) {
        continue;
      }
      Ranges u;
      for (const AbsEntry& e : entries) {
        add_range(u, e.range);
      }
      if (covers(u, r)) {
        return true;
      }
    }
    return false;
  }

  void enter_clause(const std::string& thread, const IrOp& op,
                    const IrMap& m) {
    if (m.range.bytes == 0) {
      emit(CheckKind::InvalidMap, thread, op, m.range,
           "zero-byte map clause");
      return;
    }
    if (omp::exit_only(m.type)) {
      emit(CheckKind::InvalidMap, thread, op, m.range,
           std::string{"'"} + omp::to_string(m.type) +
               "' clause on a data-entry construct");
      return;
    }
    std::vector<AbsEntry>& entries = tables[op.device];
    AbsEntry* covering = nullptr;
    for (AbsEntry& e : entries) {
      const mem::RangeRelation rel = mem::range_relation(e.range, m.range);
      if (rel == mem::RangeRelation::Disjoint) {
        continue;
      }
      if (rel == mem::RangeRelation::Equal ||
          rel == mem::RangeRelation::Contains) {
        covering = &e;  // subset re-map attaches to the live entry
        continue;
      }
      emit(CheckKind::OverlapMap, thread, op, m.range,
           std::string{to_string(rel)} + "-overlap with live mapping " +
               ir.describe(e.range));
      return;
    }
    if (covering != nullptr) {
      ++covering->refcount;
      // A non-`always` re-map of present data transfers nothing; only
      // `always to/tofrom` re-publishes host writes.
      if (m.always && omp::copies_to_device(m.type)) {
        sub_range(host_dirty, m.range);
      }
      return;
    }
    entries.push_back(AbsEntry{m.range, 1, omp::copies_to_device(m.type),
                               omp::copies_to_host(m.type)});
    if (omp::copies_to_device(m.type)) {
      sub_range(host_dirty, m.range);  // fresh h2d transfer on first insert
    }
  }

  void exit_clause(const std::string& thread, const IrOp& op,
                   const IrMap& m) {
    if (m.range.bytes == 0) {
      emit(CheckKind::InvalidMap, thread, op, m.range,
           "zero-byte map clause");
      return;
    }
    std::vector<AbsEntry>& entries = tables[op.device];
    for (std::size_t i = 0; i < entries.size(); ++i) {
      AbsEntry& e = entries[i];
      const mem::RangeRelation rel = mem::range_relation(e.range, m.range);
      if (rel == mem::RangeRelation::Disjoint) {
        continue;
      }
      if (rel != mem::RangeRelation::Equal &&
          rel != mem::RangeRelation::Contains) {
        emit(CheckKind::OverlapMap, thread, op, m.range,
             std::string{to_string(rel)} +
                 "-overlap on exit with live mapping " +
                 ir.describe(e.range));
        return;
      }
      if (m.type == omp::MapType::Delete) {
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        return;  // delete discards all outstanding references at once
      }
      if (omp::copies_to_host(m.type) && (m.always || e.refcount == 1)) {
        sub_range(device_dirty, m.range);  // d2h copy-back materialises
      }
      if (--e.refcount == 0) {
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      }
      return;
    }
    if (always_present()) {
      return;  // device-pool / global ranges never go absent
    }
    emit(CheckKind::DoubleRelease, thread, op, m.range,
         std::string{"'"} + omp::to_string(m.type) +
             "' of a range with no live mapping");
  }

  void kernel_uses(const std::string& thread, const IrOp& op) {
    for (const IrUse& u : op.uses) {
      if (ir.find(u.range.base) != &buf) {
        continue;
      }
      if (!present_on(op.device, u.range)) {
        if (present_elsewhere(op.device, u.range)) {
          emit(CheckKind::DeviceMismatch, thread, op, u.range,
               "kernel '" + op.name + "' uses data mapped on another device");
        } else {
          emit(CheckKind::UseBeforeMap, thread, op, u.range,
               "kernel '" + op.name + "' uses data never made present");
        }
      }
      if (u.access != hsa::Access::Write && overlaps(host_dirty, u.range)) {
        emit(CheckKind::ConfigDivergence, thread, op, u.range,
             "kernel '" + op.name +
                 "' reads host bytes written after the to-transfer; correct "
                 "only under coherent zero-copy (config " +
                 std::string{omp::to_string(config)} + " diverges)");
        sub_range(host_dirty, u.range);  // one finding per divergent write
      }
      if (u.access != hsa::Access::Read) {
        add_range(device_dirty, u.range);
      }
    }
    // `from`/`tofrom` clauses declare the kernel produces the range; the
    // copy-back at region exit (or its absence) decides staleness.
    for (const IrMap& m : op.maps) {
      if (ir.find(m.range.base) == &buf && omp::copies_to_host(m.type)) {
        add_range(device_dirty, m.range);
      }
    }
  }

  void step(const std::string& thread, const IrOp& op) {
    auto mine = [&](mem::AddrRange r) { return ir.find(r.base) == &buf; };
    switch (op.kind) {
      case OpKind::HostTouch: {
        if (!mine(op.range)) {
          return;
        }
        for (const auto& [d, entries] : tables) {
          for (const AbsEntry& e : entries) {
            if (e.copies_in && mem::ranges_overlap(e.range, op.range)) {
              // Record the overlap; the finding fires only if a kernel
              // actually reads it without a fresh transfer.
              const std::uint64_t lo =
                  std::max(e.range.base.value, op.range.base.value);
              const std::uint64_t hi =
                  std::min(end_of(e.range), end_of(op.range));
              add_range(host_dirty,
                        mem::AddrRange{mem::VirtAddr{lo}, hi - lo});
            }
          }
        }
        return;
      }
      case OpKind::HostRead: {
        if (mine(op.range) && overlaps(device_dirty, op.range)) {
          emit(CheckKind::StaleHostRead, thread, op, op.range,
               "host reads kernel-written bytes never copied back (no "
               "'target update from'); stale under " +
                   std::string{omp::to_string(config)} + "-style copying");
          sub_range(device_dirty, op.range);  // one finding per stale write
        }
        return;
      }
      case OpKind::HostFree: {
        if (!mine(op.range)) {
          return;
        }
        for (const auto& [d, entries] : tables) {
          for (const AbsEntry& e : entries) {
            if (mem::ranges_overlap(e.range, op.range)) {
              emit(CheckKind::ConfigDivergence, thread, op, op.range,
                   "host_free of a range still mapped on device " +
                       std::to_string(d) +
                       "; a copying runtime faults here");
              return;
            }
          }
        }
        return;
      }
      case OpKind::DataBegin:
      case OpKind::EnterData:
        for (const IrMap& m : op.maps) {
          if (mine(m.range)) {
            enter_clause(thread, op, m);
          }
        }
        return;
      case OpKind::DataEnd:
      case OpKind::ExitData:
        for (const IrMap& m : op.maps) {
          if (mine(m.range)) {
            exit_clause(thread, op, m);
          }
        }
        return;
      case OpKind::UpdateTo:
      case OpKind::UpdateFrom:
        for (const IrMap& m : op.maps) {
          if (!mine(m.range)) {
            continue;
          }
          if (!present_on(op.device, m.range)) {
            emit(CheckKind::UseBeforeMap, thread, op, m.range,
                 "'target update' of a range with no live mapping");
            continue;
          }
          if (op.kind == OpKind::UpdateTo) {
            sub_range(host_dirty, m.range);
          } else {
            sub_range(device_dirty, m.range);
          }
        }
        return;
      case OpKind::Kernel:
        for (const IrMap& m : op.maps) {
          if (mine(m.range)) {
            enter_clause(thread, op, m);
          }
        }
        kernel_uses(thread, op);
        if (!op.nowait) {
          for (const IrMap& m : op.maps) {
            if (mine(m.range)) {
              exit_clause(thread, op, m);
            }
          }
        }
        return;
      case OpKind::KernelWait:
        // The recorder copies the dispatched launch's maps into the wait
        // op, so the data-end half replays here.
        for (const IrMap& m : op.maps) {
          if (mine(m.range)) {
            exit_clause(thread, op, m);
          }
        }
        return;
      case OpKind::DeviceAlloc:
      case OpKind::DeviceFree:
      case OpKind::Memcpy:
      case OpKind::Migrate:
        return;  // pool management / explicit DMA: no mapping obligations
    }
  }
};

// ---------------------------------------------------------------------------
// Tier A: order-free set algebra for buffers referenced by several threads.
// ---------------------------------------------------------------------------

void tier_a(const OffloadIR& ir, const IrBuffer& buf,
            std::vector<CheckFinding>& out) {
  std::map<int, Ranges> ever_mapped;
  std::uint64_t enters = 0;
  std::uint64_t exits = 0;
  bool first_exit = false;
  std::string exit_thread;
  std::uint64_t exit_ordinal = 0;
  int exit_device = 0;
  mem::AddrRange exit_range{};

  auto mine = [&](mem::AddrRange r) { return ir.find(r.base) == &buf; };
  for (const ThreadStream& t : ir.threads) {
    for (const IrOp& op : t.ops) {
      const bool entering = op.kind == OpKind::DataBegin ||
                            op.kind == OpKind::EnterData ||
                            op.kind == OpKind::Kernel;
      const bool exiting =
          op.kind == OpKind::DataEnd || op.kind == OpKind::ExitData;
      for (const IrMap& m : op.maps) {
        if (!mine(m.range)) {
          continue;
        }
        if (entering && !omp::exit_only(m.type)) {
          add_range(ever_mapped[op.device], m.range);
          if (op.kind != OpKind::Kernel) {
            ++enters;  // kernel-scope clauses are begin/end balanced
          }
        }
        if (exiting) {
          ++exits;
          if (!first_exit || t.thread < exit_thread ||
              (t.thread == exit_thread && op.ordinal < exit_ordinal)) {
            first_exit = true;
            exit_thread = t.thread;
            exit_ordinal = op.ordinal;
            exit_device = op.device;
            exit_range = m.range;
          }
        }
      }
    }
  }

  if (buf.kind == BufKind::Host) {
    for (const ThreadStream& t : ir.threads) {
      for (const IrOp& op : t.ops) {
        if (op.kind != OpKind::Kernel) {
          continue;
        }
        for (const IrUse& u : op.uses) {
          if (!mine(u.range)) {
            continue;
          }
          auto it = ever_mapped.find(op.device);
          if (it != ever_mapped.end() && covers(it->second, u.range)) {
            continue;
          }
          bool elsewhere = false;
          for (const auto& [d, ranges] : ever_mapped) {
            if (d != op.device && covers(ranges, u.range)) {
              elsewhere = true;
              break;
            }
          }
          CheckFinding f;
          f.kind = elsewhere ? CheckKind::DeviceMismatch
                             : CheckKind::UseBeforeMap;
          f.thread = t.thread;
          f.op_index = op.ordinal;
          f.buffer = ir.describe(u.range);
          f.device = op.device;
          f.message =
              elsewhere
                  ? "kernel '" + op.name +
                        "' uses data only ever mapped on another device"
                  : "kernel '" + op.name +
                        "' uses data no thread ever maps";
          out.push_back(std::move(f));
        }
      }
    }
  }

  if (exits > enters && first_exit) {
    CheckFinding f;
    f.kind = CheckKind::DoubleRelease;
    f.thread = exit_thread;
    f.op_index = exit_ordinal;
    f.buffer = ir.describe(exit_range);
    f.device = exit_device;
    f.message = std::to_string(exits) + " data-exit clause(s) against " +
                std::to_string(enters) + " data-entry clause(s)";
    out.push_back(std::move(f));
  }
}

void structural_pass(const OffloadIR& ir, std::vector<CheckFinding>& out) {
  for (const ThreadStream& t : ir.threads) {
    for (const IrOp& op : t.ops) {
      for_each_ref(op, [&](mem::AddrRange r) {
        if (r.bytes != 0 && ir.find(r.base) == nullptr) {
          CheckFinding f;
          f.kind = CheckKind::InvalidMap;
          f.thread = t.thread;
          f.op_index = op.ordinal;
          f.buffer = ir.describe(r);
          f.device = op.device;
          f.message = std::string{to_string(op.kind)} +
                      " references an address outside every known allocation";
          out.push_back(std::move(f));
        }
      });
    }
  }
}

[[nodiscard]] std::uint64_t span_pages(mem::AddrRange r,
                                       std::uint64_t page_bytes) {
  if (r.bytes == 0) {
    return 0;
  }
  const std::uint64_t first = r.base.value / page_bytes;
  const std::uint64_t last = (end_of(r) - 1) / page_bytes;
  return last - first + 1;
}

[[nodiscard]] std::uint64_t inner_pages(mem::AddrRange r,
                                        std::uint64_t page_bytes) {
  const std::uint64_t first =
      (r.base.value + page_bytes - 1) / page_bytes;  // round base up
  const std::uint64_t end = end_of(r) / page_bytes;  // round end down
  return end > first ? end - first : 0;
}

}  // namespace

namespace {

[[nodiscard]] RacePartition partition_from(
    const OffloadIR& ir, const std::map<std::string, BufRefs>& refs) {
  RacePartition part;
  for (const auto& [label, br] : refs) {
    part.total_pages += span_pages(br.buf->range, ir.page_bytes);
    if (br.threads.empty()) {
      // Never referenced by any op: no access at all, trivially safe.
      part.safe_buffers.push_back(label);
      part.proven_safe.push_back(br.buf->range);
      part.safe_pages += inner_pages(br.buf->range, ir.page_bytes);
      continue;
    }
    bool safe = false;
    // S1: single-threaded synchronous use — every op on the buffer comes
    // from one thread and none is `nowait`, so program order totally
    // orders all access (DMA stamps land at submit in that same order).
    if (br.threads.size() == 1 && !br.nowait) {
      safe = true;
    }
    // S2: initialise-then-publish read-only sharing — no device-side or
    // DMA write ever touches the buffer, at most one thread host-writes
    // it, and that thread's host writes all precede its own first
    // map/kernel/update op on the buffer. The cross-thread publication
    // edge is assumed from construct structure (DESIGN.md §16 caveat).
    if (!safe && !br.nowait && !br.device_writes && !br.dma_or_migrate &&
        !br.host_free) {
      int writers = 0;
      bool ordered = true;
      for (const auto& [thread, pt] : br.per_thread) {
        if (!pt.has_host_write) {
          continue;
        }
        ++writers;
        if (pt.has_publish && pt.last_host_write > pt.first_publish) {
          ordered = false;
        }
      }
      safe = writers <= 1 && ordered;
    }
    if (safe) {
      part.safe_buffers.push_back(label);
      part.proven_safe.push_back(br.buf->range);
      part.safe_pages += inner_pages(br.buf->range, ir.page_bytes);
    } else {
      part.must_check_buffers.push_back(label);
      part.must_check.push_back(br.buf->range);
    }
  }
  const auto by_base = [](const mem::AddrRange& a, const mem::AddrRange& b) {
    return a.base.value < b.base.value;
  };
  std::sort(part.proven_safe.begin(), part.proven_safe.end(), by_base);
  std::sort(part.must_check.begin(), part.must_check.end(), by_base);
  // Labels come out of a std::map, already sorted.
  return part;
}

}  // namespace

RacePartition partition_races(const OffloadIR& ir) {
  return partition_from(ir, scan_refs(ir));
}

Analysis analyze(const OffloadIR& ir, omp::RuntimeConfig config) {
  Analysis res;
  std::vector<CheckFinding> findings;
  structural_pass(ir, findings);

  const std::map<std::string, BufRefs> refs = scan_refs(ir);
  // Tier B: the whole history of a single-thread buffer is its owner's
  // program order — walk it through the abstract PresentTable. One walker
  // per buffer, but each thread's stream is traversed ONCE, dispatching an
  // op only to the walkers of buffers it references: `step()` is a
  // complete no-op for every other op (each case filters on `mine()`), so
  // the findings are identical to a per-buffer walk at O(ops) instead of
  // O(buffers x ops) — the latter is minutes of host time on workloads
  // with thousands of short-lived per-step buffers.
  std::unordered_map<const IrBuffer*, std::unique_ptr<TierB>> walkers;
  for (const auto& [label, br] : refs) {
    if (br.threads.empty()) {
      continue;
    }
    if (br.threads.size() == 1) {
      walkers.emplace(br.buf, std::unique_ptr<TierB>(new TierB{
                                  ir, *br.buf, config, findings,
                                  {}, {}, {}}));
    } else {
      // Tier A: cross-thread order is not recorded (it varies run to
      // run), so only order-free facts are derived.
      tier_a(ir, *br.buf, findings);
    }
  }
  for (const ThreadStream& t : ir.threads) {
    for (const IrOp& op : t.ops) {
      std::set<const IrBuffer*> touched;
      for_each_ref(op, [&](mem::AddrRange r) {
        if (const IrBuffer* b = ir.find(r.base)) {
          touched.insert(b);
        }
      });
      for (const IrBuffer* b : touched) {
        const auto it = walkers.find(b);
        if (it != walkers.end()) {
          it->second->step(t.thread, op);
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
  res.trace.findings = std::move(findings);
  res.trace.ops_analyzed = ir.op_count();
  res.trace.buffers_analyzed = ir.buffers.size();
  res.partition = partition_from(ir, refs);
  return res;
}

}  // namespace zc::check
