#include "zc/check/report.hpp"

namespace zc::check {

std::string CheckFinding::to_string() const {
  std::string out{check::to_string(kind)};
  out += " " + thread + "#" + std::to_string(op_index);
  out += " dev" + std::to_string(device);
  out += " " + buffer;
  out += ": " + message;
  return out;
}

std::string CheckTrace::to_string() const {
  std::string out = "check: " + std::to_string(findings.size()) +
                    " finding(s) over " + std::to_string(ops_analyzed) +
                    " op(s), " + std::to_string(buffers_analyzed) +
                    " buffer(s)\n";
  for (const CheckFinding& f : findings) {
    out += "  " + f.to_string() + "\n";
  }
  return out;
}

std::string RacePartition::to_string() const {
  std::string out = "race-partition: " + std::to_string(safe_buffers.size()) +
                    " proven-safe / " +
                    std::to_string(must_check_buffers.size()) +
                    " must-check buffer(s), " + std::to_string(safe_pages) +
                    "/" + std::to_string(total_pages) + " page(s) pruned\n";
  for (const std::string& b : safe_buffers) {
    out += "  safe: " + b + "\n";
  }
  for (const std::string& b : must_check_buffers) {
    out += "  must-check: " + b + "\n";
  }
  return out;
}

}  // namespace zc::check
