#include "zc/check/ir.hpp"

#include <algorithm>
#include <map>

#include "zc/sim/scheduler.hpp"

namespace zc::check {

const IrBuffer* OffloadIR::find(mem::VirtAddr addr) const {
  // `buffers` is sorted by base and allocations never overlap (bump
  // allocator with guard pages), so a binary search suffices.
  auto it = std::upper_bound(
      buffers.begin(), buffers.end(), addr.value,
      [](std::uint64_t a, const IrBuffer& b) { return a < b.range.base.value; });
  if (it == buffers.begin()) {
    return nullptr;
  }
  --it;
  return it->range.contains(addr) ? &*it : nullptr;
}

std::string OffloadIR::describe(mem::AddrRange range) const {
  const IrBuffer* buf = find(range.base);
  if (buf == nullptr) {
    return "<unknown:" + std::to_string(range.bytes) + "B>";
  }
  const std::uint64_t off = range.base.value - buf->range.base.value;
  std::string out = buf->label;
  if (off != 0 || range.bytes != buf->range.bytes) {
    out += "+" + std::to_string(off) + ":" + std::to_string(range.bytes) + "B";
  }
  return out;
}

std::uint64_t OffloadIR::op_count() const {
  std::uint64_t n = 0;
  for (const ThreadStream& t : threads) {
    n += t.ops.size();
  }
  return n;
}

Recorder::RawStream& Recorder::stream_for(sim::Scheduler& sched) {
  // Ops issued outside any virtual thread (stack construction, teardown)
  // land in a synthetic "<main>" stream so nothing is ever dropped.
  const bool in = sched.in_thread();
  const int id = in ? sched.current().id() : -1;
  auto [it, inserted] = by_thread_.emplace(id, streams_.size());
  if (inserted) {
    streams_.push_back(RawStream{in ? sched.current().name() : "<main>",
                                 {}, 0, 0});
  }
  return streams_[it->second];
}

void Recorder::add_buffer(sim::Scheduler& sched, mem::AddrRange range,
                          const std::string& name, BufKind kind) {
  RawStream& s = stream_for(sched);
  IrBuffer buf;
  buf.name = name;
  buf.range = range;
  buf.kind = kind;
  buf.thread = s.thread;
  buffers_.push_back(std::move(buf));
}

void Recorder::add_global(mem::AddrRange range, const std::string& name) {
  IrBuffer buf;
  buf.name = name;
  buf.range = range;
  buf.kind = BufKind::Global;
  buffers_.push_back(std::move(buf));
}

void Recorder::record(sim::Scheduler& sched, IrOp op) {
  RawStream& s = stream_for(sched);
  if (s.suppress > 0) {
    return;
  }
  op.ordinal = s.ops.size();
  s.ops.push_back(std::move(op));
}

void Recorder::push_suppress(sim::Scheduler& sched) {
  ++stream_for(sched).suppress;
}

void Recorder::pop_suppress(sim::Scheduler& sched) {
  --stream_for(sched).suppress;
}

std::uint64_t Recorder::issue_token(sim::Scheduler& sched) {
  // Tokens are (thread, counter) pairs flattened into 64 bits; the stream
  // index is only used intra-run, pairing a nowait dispatch with its wait.
  RawStream& s = stream_for(sched);
  const auto idx = static_cast<std::uint64_t>(&s - streams_.data());
  return (idx << 32) | ++s.tokens;
}

OffloadIR Recorder::build() const {
  OffloadIR ir;
  ir.page_bytes = page_bytes_;
  ir.threads.reserve(streams_.size());
  for (const RawStream& s : streams_) {
    if (s.ops.empty()) {
      continue;
    }
    ir.threads.push_back(ThreadStream{s.thread, s.ops});
  }
  std::sort(ir.threads.begin(), ir.threads.end(),
            [](const ThreadStream& a, const ThreadStream& b) {
              return a.thread < b.thread;
            });

  // Assign per-(thread, name) occurrence indices in allocation order —
  // per-thread program order, so invariant across stress seeds — then a
  // label that is the bare name when unique run-wide.
  ir.buffers = buffers_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> occurrence;
  std::map<std::string, std::uint64_t> by_name;
  for (IrBuffer& b : ir.buffers) {
    b.nth = occurrence[{b.thread, b.name}]++;
    ++by_name[b.name];
  }
  for (IrBuffer& b : ir.buffers) {
    if (by_name[b.name] == 1) {
      b.label = b.name;
    } else {
      b.label = b.name + "@" + (b.thread.empty() ? "<image>" : b.thread) +
                "#" + std::to_string(b.nth);
    }
  }
  std::sort(ir.buffers.begin(), ir.buffers.end(),
            [](const IrBuffer& a, const IrBuffer& b) {
              return a.range.base.value < b.range.base.value;
            });
  return ir;
}

}  // namespace zc::check
