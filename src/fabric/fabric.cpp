#include "zc/fabric/fabric.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace zc::fabric {

using sim::Duration;
using sim::Interval;
using sim::ResourceTimeline;
using sim::TimePoint;

Fabric::Fabric(int sockets, FabricConfig config)
    : sockets_{sockets}, config_{config} {
  if (sockets_ <= 0) {
    throw std::invalid_argument("Fabric: sockets must be positive");
  }
  if (config_.channels_per_link <= 0) {
    throw std::invalid_argument("Fabric: channels_per_link must be positive");
  }
  if (!enabled()) {
    return;
  }
  const std::size_t n = static_cast<std::size_t>(sockets_);
  links_.reserve(n * n);
  for (int s = 0; s < sockets_; ++s) {
    for (int d = 0; d < sockets_; ++d) {
      // The diagonal slots exist only to keep indexing dense; they are
      // never reserved (local transfers bypass the fabric entirely).
      links_.emplace_back(
          "xgmi-" + std::to_string(s) + "-" + std::to_string(d),
          config_.channels_per_link);
    }
  }
  transfers_.assign(n * n, 0);
  bytes_.assign(n * n, 0);
}

std::size_t Fabric::index(int src, int dst) const {
  return static_cast<std::size_t>(src) * static_cast<std::size_t>(sockets_) +
         static_cast<std::size_t>(dst);
}

void Fabric::check_pair(int src, int dst) const {
  if (src < 0 || src >= sockets_ || dst < 0 || dst >= sockets_) {
    throw std::out_of_range("Fabric: socket pair (" + std::to_string(src) +
                            ", " + std::to_string(dst) + ") out of range for " +
                            std::to_string(sockets_) + " sockets");
  }
}

bool Fabric::wide_link(int src, int dst) const {
  check_pair(src, dst);
  if (src == dst) {
    return false;
  }
  if (config_.mode == FabricMode::Uniform) {
    return true;
  }
  return std::popcount(static_cast<unsigned>(src ^ dst)) == 1;
}

LinkParams Fabric::link(int src, int dst) const {
  check_pair(src, dst);
  if (!enabled() || src == dst) {
    return LinkParams{};
  }
  return LinkParams{
      .bandwidth_bytes_per_s = wide_link(src, dst)
                                   ? config_.wide_bandwidth_bytes_per_s
                                   : config_.narrow_bandwidth_bytes_per_s,
      .latency = config_.link_latency,
  };
}

Duration Fabric::transfer_duration(int src, int dst,
                                   std::uint64_t bytes) const {
  const LinkParams p = link(src, dst);
  if (p.bandwidth_bytes_per_s <= 0.0) {
    return Duration::zero();
  }
  return p.latency + Duration::from_seconds(static_cast<double>(bytes) /
                                            p.bandwidth_bytes_per_s);
}

Interval Fabric::reserve_transfer(int src, int dst, TimePoint ready,
                                  Duration dur, std::uint64_t bytes) {
  check_pair(src, dst);
  if (!enabled() || src == dst) {
    return Interval{ready, ready};
  }
  const std::size_t i = index(src, dst);
  ++transfers_[i];
  bytes_[i] += bytes;
  return links_[i].reserve(ready, dur);
}

LinkStats Fabric::stats(int src, int dst) const {
  check_pair(src, dst);
  if (!enabled() || src == dst) {
    return LinkStats{};
  }
  const std::size_t i = index(src, dst);
  return LinkStats{
      .transfers = transfers_[i],
      .bytes = bytes_[i],
      .busy = links_[i].busy_time(),
      .queued = links_[i].queue_time(),
  };
}

std::uint64_t Fabric::total_transfers() const {
  std::uint64_t total = 0;
  for (const std::uint64_t t : transfers_) {
    total += t;
  }
  return total;
}

void Fabric::reset() {
  for (ResourceTimeline& l : links_) {
    l.reset();
  }
  transfers_.assign(transfers_.size(), 0);
  bytes_.assign(bytes_.size(), 0);
}

}  // namespace zc::fabric
