#include "zc/core/config.hpp"

namespace zc::omp {

RuntimeConfig resolve_config(apu::MachineKind kind,
                             const apu::RunEnvironment& env,
                             bool requires_usm) {
  const bool apu = kind == apu::MachineKind::ApuMi300a;
  if (requires_usm) {
    if (!env.hsa_xnack) {
      throw ConfigError(
          "program requires unified_shared_memory but XNACK (HSA_XNACK) is "
          "disabled in this environment");
    }
    return RuntimeConfig::UnifiedSharedMemory;
  }
  if (env.ompx_apu_maps == apu::ApuMapsMode::Adaptive && apu) {
    return RuntimeConfig::AdaptiveMaps;
  }
  if (env.ompx_eager_maps && apu) {
    return RuntimeConfig::EagerMaps;
  }
  if (env.hsa_xnack &&
      (apu || env.ompx_apu_maps != apu::ApuMapsMode::Off)) {
    return RuntimeConfig::ImplicitZeroCopy;
  }
  return RuntimeConfig::LegacyCopy;
}

}  // namespace zc::omp
