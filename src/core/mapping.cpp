#include "zc/core/mapping.hpp"

#include <stdexcept>

namespace zc::omp {

PresentEntry& PresentTable::insert(mem::AddrRange host,
                                   mem::VirtAddr device_base, bool pinned) {
  if (host.empty()) {
    throw std::invalid_argument("PresentTable::insert: empty range");
  }
  // Reject any overlap with neighbours (the shared range-relation helper
  // keeps this byte-for-byte consistent with the zc::check overlap pass:
  // adjacency is legal, sharing bytes is not).
  auto next = entries_.lower_bound(host.base.value);
  if (next != entries_.end() && mem::ranges_overlap(next->second.host, host)) {
    throw std::invalid_argument(
        "PresentTable::insert: range overlaps existing mapping at " +
        next->second.host.base.to_string());
  }
  if (next != entries_.begin()) {
    auto prev = std::prev(next);
    if (mem::ranges_overlap(prev->second.host, host)) {
      throw std::invalid_argument(
          "PresentTable::insert: range overlaps existing mapping at " +
          prev->second.host.base.to_string());
    }
  }
  PresentEntry entry{host, device_base, 0, pinned};
  auto [it, ok] = entries_.emplace(host.base.value, entry);
  (void)ok;
  return it->second;
}

PresentEntry* PresentTable::lookup(mem::VirtAddr addr) {
  if (mru_ != nullptr && mru_->host.contains(addr)) {
    return mru_;
  }
  if (entries_.empty()) {
    return nullptr;
  }
  auto it = entries_.upper_bound(addr.value);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  if (!it->second.host.contains(addr)) {
    return nullptr;
  }
  mru_ = &it->second;
  return mru_;
}

const PresentEntry* PresentTable::lookup(mem::VirtAddr addr) const {
  return const_cast<PresentTable*>(this)->lookup(addr);
}

PresentEntry* PresentTable::lookup_range(mem::AddrRange range) {
  PresentEntry* e = lookup(range.base);
  if (e == nullptr) {
    return nullptr;
  }
  if (!mem::range_covers(e->host, range)) {
    throw std::invalid_argument(
        "PresentTable::lookup_range: range extends past mapped range of '" +
        e->host.base.to_string() + "'");
  }
  return e;
}

void PresentTable::erase(mem::VirtAddr host_base) {
  auto it = entries_.find(host_base.value);
  if (it == entries_.end()) {
    throw std::invalid_argument("PresentTable::erase: unknown base " +
                                host_base.to_string());
  }
  if (mru_ == &it->second) {
    mru_ = nullptr;
  }
  entries_.erase(it);
}

}  // namespace zc::omp
