#include "zc/core/target_region.hpp"

#include <stdexcept>

namespace zc::omp {

mem::VirtAddr ArgTranslator::device(mem::VirtAddr host) const {
  if (const PresentEntry* e = table_->lookup(host)) {
    return e->device_addr(host);
  }
  if (zero_copy_default_) {
    return host;
  }
  // Raw device pointers (omp_target_alloc / is_device_ptr) are already
  // device addresses in every configuration.
  if (space_ != nullptr) {
    const mem::Allocation* a = space_->find(host);
    if (a != nullptr && a->kind() == mem::MemKind::DevicePool) {
      return host;
    }
  }
  throw std::invalid_argument(
      "ArgTranslator: host address " + host.to_string() +
      " is not present in any device data environment (Legacy Copy "
      "requires an enclosing map)");
}

}  // namespace zc::omp
