#include "zc/core/offload_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "zc/check/ir.hpp"
#include "zc/race/api.hpp"

namespace zc::omp {

using sim::Duration;

namespace {

/// Shape-only projection of a construct's map list for the offload IR.
check::IrOp make_map_op(check::OpKind kind, std::span<const MapEntry> maps,
                        int device) {
  check::IrOp op;
  op.kind = kind;
  op.device = device;
  op.maps.reserve(maps.size());
  for (const MapEntry& e : maps) {
    op.maps.push_back(check::IrMap{e.host_range(), e.type, e.always});
  }
  return op;
}

/// Projection of a target region (maps + enclosing-environment uses).
check::IrOp make_region_op(const TargetRegion& region, int device,
                           bool nowait, std::uint64_t token) {
  check::IrOp op = make_map_op(check::OpKind::Kernel, region.maps, device);
  op.nowait = nowait;
  op.token = token;
  op.name = region.name;
  op.uses.reserve(region.uses.size());
  for (const BufferUse& u : region.uses) {
    op.uses.push_back(
        check::IrUse{mem::AddrRange{u.addr, u.bytes}, u.access});
  }
  return op;
}

}  // namespace

OffloadRuntime::OffloadRuntime(hsa::Runtime& hsa, ProgramBinary program)
    : hsa_{hsa},
      program_{std::move(program)},
      config_{resolve_config(hsa.machine().kind(), hsa.machine().env(),
                             program_.requires_unified_shared_memory)},
      tables_{table_mutex_, "PresentTable",
              static_cast<std::size_t>(hsa.machine().sockets())},
      adapt_{table_mutex_,       "AdaptPolicy",
             hsa.machine().costs(), hsa.machine().adapt_params(),
             hsa.machine().sockets(), hsa.machine().page_bytes(),
             hsa.machine().env().hsa_xnack},
      decisions_{table_mutex_, "DecisionTrace"},
      pressure_{table_mutex_, "MemPressure",
                std::vector<char>(
                    static_cast<std::size_t>(hsa.machine().sockets()), 0)},
      service_pressure_{table_mutex_, "ServicePressure",
                        std::vector<double>(
                            static_cast<std::size_t>(hsa.machine().sockets()),
                            0.0)},
      breakers_{table_mutex_, "CircuitBreaker",
                std::vector<CircuitBreaker>(
                    static_cast<std::size_t>(hsa.machine().sockets()),
                    CircuitBreaker{
                        hsa.machine().degrade_params().breaker_trip_threshold,
                        hsa.machine().degrade_params().breaker_window,
                        hsa.machine().degrade_params().breaker_cooldown})},
      breaker_attention_(static_cast<std::size_t>(hsa.machine().sockets()),
                         0) {
  // Every watchdog trip — regardless of which construct hung — feeds the
  // hung device's breaker.
  hsa_.watchdog().set_trip_listener(
      [this](int device, sim::TimePoint) { note_breaker_trip(device); });
}

int OffloadRuntime::device_count() const {
  return hsa_.machine().sockets();
}

void OffloadRuntime::check_device(int device) const {
  if (device < 0 || device >= device_count()) {
    throw MappingError("device " + std::to_string(device) +
                           " out of range (have " +
                           std::to_string(device_count()) + ")",
                       ErrorCode::DeviceOutOfRange, device);
  }
}

void OffloadRuntime::ensure_image_loaded() {
  // First caller loads the image; concurrent callers wait until it is
  // fully loaded (image load performs time-advancing allocations, so a
  // plain flag would let others observe a half-loaded image). The
  // flag-check-and-set is atomic under cooperative scheduling: no yield
  // happens between the test and the assignment.
  if (!image_load_started_) {
    image_load_started_ = true;
    load_image();
    image_loaded_ = true;
    image_latch_.set(hsa_.machine().sched());
  } else if (!image_loaded_) {
    image_latch_.wait(hsa_.machine().sched());
  }
}

void OffloadRuntime::ensure_initialized() {
  ensure_image_loaded();
  const int tid = hsa_.machine().sched().current().id();
  // A target region calls this three times (begin/launch/end) from the
  // same thread, so one memoized id skips the set probe in steady state.
  if (tid == last_init_tid_) {
    return;
  }
  if (initialized_threads_.contains(tid)) {
    last_init_tid_ = tid;
    return;
  }
  initialized_threads_.insert(tid);
  last_init_tid_ = tid;
  // Per-thread runtime structures: HSA queues, signal pools, staging.
  // One-time init work is exempt from the steady-state overhead ledger.
  for (int i = 0; i < kThreadInitAllocs; ++i) {
    image_allocs_.push_back(hsa_.memory_pool_allocate(
        i == 0 ? (4u << 20) : (256u << 10),
        "omp-thread" + std::to_string(tid) + "-init",
        /*count_in_ledger=*/false));
  }
}

void OffloadRuntime::load_image() {
  // GPU code object and offload runtime support structures (one-time work,
  // exempt from the steady-state overhead ledger).
  // The code object of a large application plus device runtime structures
  // run to hundreds of MB.
  for (int i = 0; i < kImageLoadAllocs; ++i) {
    image_allocs_.push_back(hsa_.memory_pool_allocate(
        i == 0 ? (128u << 20) : (16u << 20), "omp-image-" + std::to_string(i),
        /*count_in_ledger=*/false));
  }
  // Upload the code object and device environment (the few DMA copies the
  // zero-copy configurations still show in HSA traces).
  mem::Allocation& staging = hsa_.memory().os_alloc(256 << 10, "omp-image-staging");
  std::vector<PendingCopy> uploads;
  for (int i = 0; i < kImageLoadCopies; ++i) {
    uploads.push_back(submit_copy(image_allocs_[0], staging.base(), 64 << 10,
                                  mem::AddrRange{staging.base(), 64 << 10},
                                  /*with_handler=*/false,
                                  /*count_in_ledger=*/false, /*device=*/0));
  }
  wait_all(uploads);

  // Declare-target globals: host storage always exists (static data, no
  // runtime cost); the device side depends on the configuration.
  for (const GlobalVar& g : program_.globals) {
    if (g.bytes == 0) {
      throw OffloadError(ErrorCode::InvalidArgument,
                         "global '" + g.name + "' has zero size");
    }
    mem::Allocation& host =
        hsa_.memory().os_alloc(g.bytes, "global:" + g.name);
    (void)hsa_.memory().host_touch(host.range());  // static data is resident
    global_host_.emplace(g.name, host.base());
    global_ranges_.push_back(host.range());
    if (recorder_ != nullptr) {
      recorder_->add_global(host.range(), "global:" + g.name);
    }
    if (globals_use_device_copy(config_)) {
      // Each GPU code object carries its own copy of the global (§IV-C).
      for (int d = 0; d < device_count(); ++d) {
        const mem::VirtAddr dev = hsa_.memory_pool_allocate(
            g.bytes, "global-dev:" + g.name, /*count_in_ledger=*/false, d);
        sim::LockGuard lock{table_mutex_, hsa_.machine().sched()};
        tables_.get(hsa_.machine().sched())[static_cast<std::size_t>(d)]
            .insert(host.range(), dev, /*pinned=*/true);
      }
    }
    // Under Unified Shared Memory the device image stores a pointer to the
    // host global (double indirection): no device storage at all.
  }
}

mem::VirtAddr OffloadRuntime::global_host_addr(const std::string& name) {
  // Resolving a global is a runtime call like any other: besides waiting
  // for the image, the calling thread pays its one-time per-thread
  // initialization here if this is its first entry into the runtime.
  ensure_initialized();
  auto it = global_host_.find(name);
  if (it == global_host_.end()) {
    throw OffloadError(ErrorCode::UnknownGlobal,
                       "unknown declare-target global '" + name + "'");
  }
  return it->second;
}

void OffloadRuntime::set_recorder(check::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder_ == nullptr || !image_loaded_) {
    return;  // a later load_image registers the globals
  }
  for (const auto& [name, base] : global_host_) {
    for (const mem::AddrRange& r : global_ranges_) {
      if (r.contains(base)) {
        recorder_->add_global(r, "global:" + name);
        break;
      }
    }
  }
}

mem::VirtAddr OffloadRuntime::host_alloc(std::uint64_t bytes,
                                         std::string name, int home_socket) {
  check_device(home_socket);
  apu::Machine& m = hsa_.machine();
  m.sched().advance(m.jittered(m.costs().os_alloc_base));
  mem::Allocation& a =
      hsa_.memory().os_alloc(bytes, std::move(name), home_socket);
  if (recorder_ != nullptr) {
    recorder_->add_buffer(m.sched(), a.range(), a.name(),
                          check::BufKind::Host);
  }
  return a.base();
}

mem::VirtAddr OffloadRuntime::host_alloc_placed(std::uint64_t bytes,
                                                std::string name,
                                                mem::Placement placement,
                                                int home_socket) {
  check_device(home_socket);
  apu::Machine& m = hsa_.machine();
  m.sched().advance(m.jittered(m.costs().os_alloc_base));
  mem::Allocation& a =
      hsa_.memory().os_alloc_placed(bytes, std::move(name), placement,
                                    home_socket);
  if (recorder_ != nullptr) {
    recorder_->add_buffer(m.sched(), a.range(), a.name(),
                          check::BufKind::Host);
  }
  return a.base();
}

void OffloadRuntime::host_free(mem::VirtAddr base) {
  // Map sanitizer: freeing host memory that is still mapped into a device
  // data environment leaves the runtime holding a dangling shadow copy —
  // a use-after-free on real systems. Catch it loudly here. Ordering
  // discipline: *every* check (all devices' tables, then the allocation's
  // own validity) completes before any bookkeeping is mutated, so a
  // rejected free — including one `os_free` below would reject — leaves
  // the Adaptive Maps cache exactly as it was.
  const mem::Allocation* const a = hsa_.memory().space().find(base);
  if (recorder_ != nullptr && a != nullptr) {
    check::IrOp op;
    op.kind = check::OpKind::HostFree;
    op.range = a->range();
    recorder_->record(hsa_.machine().sched(), std::move(op));
  }
  {
    sim::LockGuard lock{table_mutex_, hsa_.machine().sched()};
    auto& tables = tables_.get(hsa_.machine().sched());
    for (int d = 0; d < device_count(); ++d) {
      if (tables[static_cast<std::size_t>(d)].lookup(base) != nullptr) {
        throw MappingError("host_free of memory still mapped on device " +
                               std::to_string(d) + " at " + base.to_string(),
                           ErrorCode::MappingViolation, d,
                           mem::AddrRange{base, a != nullptr ? a->bytes() : 0});
      }
    }
    // Addresses can be recycled by later allocations: drop any cached
    // Adaptive Maps decision for the freed range — but only for a free
    // os_free will actually accept (exact base, host-OS kind).
    if (a != nullptr && a->base() == base && a->kind() == mem::MemKind::HostOs) {
      adapt_.get(hsa_.machine().sched()).forget(a->range());
    }
  }
  apu::Machine& m = hsa_.machine();
  m.sched().advance(m.jittered(m.costs().os_free_base));
  hsa_.memory().os_free(base);
}

void OffloadRuntime::host_first_touch(mem::AddrRange range) {
  apu::Machine& m = hsa_.machine();
  if (recorder_ != nullptr) {
    check::IrOp op;
    op.kind = check::OpKind::HostTouch;
    op.range = range;
    recorder_->record(m.sched(), std::move(op));
  }
  const std::uint64_t new_pages = hsa_.memory().host_touch(range);
  if (new_pages == 0) {
    return;
  }
  const double page_scale =
      static_cast<double>(m.page_bytes()) / static_cast<double>(2ULL << 20);
  m.sched().advance(m.jittered(m.costs().host_touch_per_page_2mb * page_scale *
                               static_cast<double>(new_pages)));
}

void OffloadRuntime::host_read(mem::AddrRange range) {
  apu::Machine& m = hsa_.machine();
  // A host read is the read-side twin of host_first_touch's page stamp:
  // under zero-copy these are the pages kernels write, so an unordered
  // in-flight kernel write is a race the detector must see.
  if (sim::ConcurrencyHooks* h = m.sched().hooks()) {
    const mem::Allocation* const a = hsa_.memory().space().find(range.base);
    const std::string site =
        "host_read('" + (a != nullptr ? a->name() : std::string{"?"}) + "')";
    const std::uint64_t pb = m.page_bytes();
    h->on_host_pages(range.first_page(pb),
                     range.end_page(pb) - range.first_page(pb),
                     /*is_write=*/false, site);
  }
  if (recorder_ != nullptr) {
    check::IrOp op;
    op.kind = check::OpKind::HostRead;
    op.range = range;
    recorder_->record(m.sched(), std::move(op));
  }
}

bool OffloadRuntime::is_global_addr(mem::VirtAddr a) const {
  return std::any_of(global_ranges_.begin(), global_ranges_.end(),
                     [a](const mem::AddrRange& r) { return r.contains(a); });
}

bool OffloadRuntime::copy_managed(const MapEntry& entry) const {
  switch (config_) {
    case RuntimeConfig::LegacyCopy:
      return true;
    case RuntimeConfig::UnifiedSharedMemory:
      return false;
    case RuntimeConfig::ImplicitZeroCopy:
    case RuntimeConfig::EagerMaps:
    case RuntimeConfig::AdaptiveMaps:
      // §IV-C: globals keep Copy behaviour; everything else is zero-copy
      // (or, under Adaptive Maps, engine-classified).
      return is_global_addr(entry.host_ptr);
  }
  return true;
}

bool OffloadRuntime::engine_managed(const MapEntry& entry) const {
  return config_ == RuntimeConfig::AdaptiveMaps && !copy_managed(entry);
}

OffloadRuntime::PendingCopy OffloadRuntime::submit_copy(
    mem::VirtAddr dst, mem::VirtAddr src, std::uint64_t bytes,
    mem::AddrRange host, bool with_handler, bool count_in_ledger, int device) {
  return PendingCopy{
      hsa_.memory_async_copy(dst, src, bytes, with_handler, count_in_ledger,
                             device),
      dst, src, bytes, host, with_handler, count_in_ledger, device};
}

void OffloadRuntime::wait_all(std::vector<PendingCopy>& copies) {
  if (copies.empty()) {
    return;
  }
  apu::Machine& m = hsa_.machine();
  // The runtime batches: one wait on the transfer that completes last
  // (engine FIFO ordering makes every earlier submission complete earlier
  // or on another engine no later than observed here). A stalled copy's
  // signal is unbound — sort it last and wait on it anyway: the wait
  // blocks until the watchdog aborts it (or, with no watchdog, deadlocks
  // with a diagnostic naming the stuck signal).
  auto completes_at = [](const PendingCopy& p) {
    return p.signal.is_complete() ? p.signal.complete_at()
                                  : sim::TimePoint::max();
  };
  auto latest =
      std::max_element(copies.begin(), copies.end(),
                       [&](const PendingCopy& a, const PendingCopy& b) {
                         return completes_at(a) < completes_at(b);
                       });
  hsa_.signal_wait_scacquire(latest->signal);
  for (PendingCopy& pc : copies) {
    if (!pc.signal.is_complete()) {
      // More than one stall in the batch: each tripped at its own deadline.
      hsa_.signal_wait_scacquire(pc.signal);
    }
  }
  // Watchdog-abort ladder: a copy whose queue was torn down delivered no
  // bytes; replay it (recover mode) up to the replay budget. A replay can
  // itself stall (repeat injection) — its wait then blocks until the next
  // trip — or complete with an error payload, which the error ladder
  // below handles.
  const apu::WatchdogConfig& wd = hsa_.watchdog().config();
  for (PendingCopy& pc : copies) {
    if (!pc.signal.aborted()) {
      continue;
    }
    const int max_replays = m.degrade_params().watchdog_max_replays;
    bool recovered = false;
    for (int attempt = 1; wd.recover && attempt <= max_replays; ++attempt) {
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::WatchdogReplay,
                             .device = pc.device,
                             .time = m.sched().now(),
                             .host_base = pc.host.base.value,
                             .bytes = pc.bytes,
                             .attempt = attempt});
      hsa::Signal retry =
          hsa_.memory_async_copy(pc.dst, pc.src, pc.bytes, pc.with_handler,
                                 pc.count_in_ledger, pc.device);
      hsa_.signal_wait_scacquire(retry);
      if (retry.aborted()) {
        continue;
      }
      pc.signal = retry;
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::WatchdogRecovered,
                             .device = pc.device,
                             .time = m.sched().now(),
                             .host_base = pc.host.base.value,
                             .bytes = pc.bytes,
                             .attempt = attempt});
      recovered = true;
      break;
    }
    if (!recovered) {
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::RegionFailed,
                             .device = pc.device,
                             .time = m.sched().now(),
                             .host_base = pc.host.base.value,
                             .bytes = pc.bytes});
      const mem::AddrRange host = pc.host;
      const int device = pc.device;
      copies.clear();
      throw OffloadError(ErrorCode::OperationHung,
                         "async copy of " + std::to_string(host.bytes) +
                             "B at " + host.base.to_string() +
                             " hung; the watchdog aborted it" +
                             (wd.recover ? " and replays were exhausted"
                                         : " (abort mode)"),
                         device, host);
    }
  }
  // Retry ladder: each copy whose signal carries an error payload is
  // resubmitted a bounded number of times; if the last resubmission also
  // fails, only the offending region fails — with a structured error, not
  // an abort — and the runtime stays usable.
  for (PendingCopy& pc : copies) {
    if (!pc.signal.errored()) {
      continue;
    }
    const int max_retries = m.degrade_params().copy_max_retries;
    bool recovered = false;
    for (int attempt = 1; attempt <= max_retries; ++attempt) {
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::CopyRetry,
                             .device = pc.device,
                             .time = m.sched().now(),
                             .host_base = pc.host.base.value,
                             .bytes = pc.bytes,
                             .attempt = attempt});
      hsa::Signal retry =
          hsa_.memory_async_copy(pc.dst, pc.src, pc.bytes, pc.with_handler,
                                 pc.count_in_ledger, pc.device);
      hsa_.signal_wait_scacquire(retry);
      if (!retry.errored()) {
        hsa_.record_fault(
            trace::FaultRecord{.event = trace::FaultEvent::CopyRetrySucceeded,
                               .device = pc.device,
                               .time = m.sched().now(),
                               .host_base = pc.host.base.value,
                               .bytes = pc.bytes,
                               .attempt = attempt});
        recovered = true;
        break;
      }
    }
    if (!recovered) {
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::RegionFailed,
                             .device = pc.device,
                             .time = m.sched().now(),
                             .host_base = pc.host.base.value,
                             .bytes = pc.bytes});
      const mem::AddrRange host = pc.host;
      const int device = pc.device;
      copies.clear();
      throw OffloadError(ErrorCode::CopyFailed,
                         "async copy of " + std::to_string(host.bytes) +
                             "B at " + host.base.to_string() +
                             " failed after retry",
                         device, host);
    }
  }
  copies.clear();
}

void OffloadRuntime::prefault_with_retry(mem::AddrRange range, int device) {
  apu::Machine& m = hsa_.machine();
  const apu::DegradeParams& dp = m.degrade_params();
  sim::Duration backoff = dp.prefault_backoff_base;
  int attempt = 0;  // transient (EINTR/EBUSY) failures observed so far
  int hangs = 0;    // watchdog-aborted attempts observed so far
  while (true) {
    const hsa::PrefaultResult r =
        hsa_.try_svm_attributes_set_prefault(range, device);
    if (r.ok()) {
      if (hangs > 0) {
        hsa_.record_fault(
            trace::FaultRecord{.event = trace::FaultEvent::WatchdogRecovered,
                               .device = device,
                               .time = m.sched().now(),
                               .host_base = range.base.value,
                               .bytes = range.bytes,
                               .attempt = hangs});
      }
      if (attempt > 0) {
        hsa_.record_fault(trace::FaultRecord{
            .event = trace::FaultEvent::PrefaultRetrySucceeded,
            .device = device,
            .time = m.sched().now(),
            .host_base = range.base.value,
            .bytes = range.bytes,
            .attempt = attempt + 1});
      }
      return;
    }
    if (r.status == hsa::Status::TimedOut) {
      // The syscall hung and the watchdog aborted it (the queue rebuild is
      // already paid). Replay immediately — the injection's call counter
      // has advanced, so a one-shot hang does not refire.
      const apu::WatchdogConfig& wd = hsa_.watchdog().config();
      ++hangs;
      if (!wd.recover || hangs > dp.watchdog_max_replays) {
        hsa_.record_fault(
            trace::FaultRecord{.event = trace::FaultEvent::RegionFailed,
                               .device = device,
                               .time = m.sched().now(),
                               .host_base = range.base.value,
                               .bytes = range.bytes,
                               .attempt = hangs});
        throw OffloadError(ErrorCode::OperationHung,
                           "svm_attributes_set prefault of " +
                               std::to_string(range.bytes) + "B at " +
                               range.base.to_string() +
                               " hung; the watchdog aborted it" +
                               (wd.recover ? " and replays were exhausted"
                                           : " (abort mode)"),
                           device, range);
      }
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::WatchdogReplay,
                             .device = device,
                             .time = m.sched().now(),
                             .host_base = range.base.value,
                             .bytes = range.bytes,
                             .attempt = hangs});
      continue;
    }
    ++attempt;
    if (attempt > dp.prefault_max_retries) {
      if (m.env().hsa_xnack) {
        // Prefault was an optimization: XNACK demand faulting still makes
        // the range translatable, just one page at a time.
        hsa_.record_fault(
            trace::FaultRecord{.event = trace::FaultEvent::PrefaultFallbackXnack,
                               .device = device,
                               .time = m.sched().now(),
                               .host_base = range.base.value,
                               .bytes = range.bytes,
                               .attempt = attempt});
        return;
      }
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::RegionFailed,
                             .device = device,
                             .time = m.sched().now(),
                             .host_base = range.base.value,
                             .bytes = range.bytes,
                             .attempt = attempt});
      throw OffloadError(ErrorCode::PrefaultFailed,
                         "svm_attributes_set prefault of " +
                             std::to_string(range.bytes) + "B at " +
                             range.base.to_string() + " failed after " +
                             std::to_string(attempt) +
                             " attempts with XNACK disabled",
                         device, range);
    }
    // Transient EINTR/EBUSY: back off exponentially in virtual time and
    // retry. The sleep yields the CPU — any state read before it must be
    // re-validated after.
    hsa_.record_fault(trace::FaultRecord{.event = trace::FaultEvent::PrefaultRetry,
                                         .device = device,
                                         .time = m.sched().now(),
                                         .host_base = range.base.value,
                                         .bytes = range.bytes,
                                         .attempt = attempt});
    m.sched().advance(backoff);
    backoff = backoff * dp.prefault_backoff_factor;
  }
}

void OffloadRuntime::record_breaker_transitions(
    const std::vector<CircuitBreaker::Transition>& transitions, int device) {
  for (const CircuitBreaker::Transition& t : transitions) {
    trace::FaultEvent event = trace::FaultEvent::BreakerClosed;
    switch (t.to) {
      case CircuitBreaker::State::Open:
        event = trace::FaultEvent::BreakerOpened;
        break;
      case CircuitBreaker::State::HalfOpen:
        event = trace::FaultEvent::BreakerHalfOpened;
        break;
      case CircuitBreaker::State::Closed:
        event = trace::FaultEvent::BreakerClosed;
        break;
    }
    hsa_.record_fault(trace::FaultRecord{
        .event = event, .device = device, .time = t.at});
  }
}

void OffloadRuntime::set_service_pressure(int device, double occupancy) {
  sim::Scheduler& sched = hsa_.machine().sched();
  sim::LockGuard lock{table_mutex_, sched};
  service_pressure_.get(sched)[static_cast<std::size_t>(device)] =
      std::clamp(occupancy, 0.0, 1.0);
}

void OffloadRuntime::note_breaker_trip(int device) {
  sim::Scheduler& sched = hsa_.machine().sched();
  sim::LockGuard lock{table_mutex_, sched};
  CircuitBreaker& b =
      breakers_.get(sched)[static_cast<std::size_t>(device)];
  record_breaker_transitions(b.record_trip(sched.now()), device);
  breaker_attention_[static_cast<std::size_t>(device)] =
      b.state() != CircuitBreaker::State::Closed ? 1 : 0;
  // The attention flag is modeled as a release-store/acquire-load atomic:
  // the lock-free fast-path read below is intentional, so the flag itself
  // is exempt from data-access checking but still publishes an ordering
  // edge to readers that observe it.
  race::atomic_store(sched, &breaker_attention_[static_cast<std::size_t>(device)]);
}

bool OffloadRuntime::breaker_pinned(int device) {
  race::atomic_load(hsa_.machine().sched(),
                    &breaker_attention_[static_cast<std::size_t>(device)]);
  if (breaker_attention_[static_cast<std::size_t>(device)] == 0) {
    return false;  // closed (the steady state): no lock on the hot path
  }
  sim::Scheduler& sched = hsa_.machine().sched();
  sim::LockGuard lock{table_mutex_, sched};
  return breaker_pinned_locked(device);
}

bool OffloadRuntime::breaker_pinned_locked(int device) {
  if (breaker_attention_[static_cast<std::size_t>(device)] == 0) {
    return false;
  }
  sim::Scheduler& sched = hsa_.machine().sched();
  CircuitBreaker& b =
      breakers_.get(sched)[static_cast<std::size_t>(device)];
  record_breaker_transitions(b.advance_to(sched.now()), device);
  breaker_attention_[static_cast<std::size_t>(device)] =
      b.state() != CircuitBreaker::State::Closed ? 1 : 0;
  race::atomic_store(sched, &breaker_attention_[static_cast<std::size_t>(device)]);
  return b.open();
}

void OffloadRuntime::fallback_map_zero_copy(const MapEntry& entry, int device,
                                            trace::FaultEvent reason,
                                            bool counts_as_trip) {
  apu::Machine& m = hsa_.machine();
  hsa_.record_fault(trace::FaultRecord{.event = reason,
                                       .device = device,
                                       .time = m.sched().now(),
                                       .host_base = entry.host_ptr.value,
                                       .bytes = entry.bytes});
  if (counts_as_trip) {
    // Degraded-mode events feed the breaker alongside watchdog trips; the
    // breaker's own pinned maps must not, or it would never close.
    note_breaker_trip(device);
  }
  if (!m.env().hsa_xnack) {
    // XNACK disabled (Legacy Copy): the GPU cannot demand-fault host
    // pages, so the whole range must be translatable BEFORE the degraded
    // entry is published — the prefault below yields (backoff, driver
    // lock), and another thread may dispatch a kernel on this range the
    // instant it appears in the table.
    prefault_with_retry(entry.host_range(), device);
  }
  sim::LockGuard lock{table_mutex_, m.sched()};
  PresentTable& table = tables_.get(m.sched())[static_cast<std::size_t>(device)];
  // Double-checked: another thread may have mapped the range while this
  // one was prefaulting.
  if (PresentEntry* e = table.lookup_range(entry.host_range()); e != nullptr) {
    if (!e->pinned) {
      ++e->refcount;
    }
    return;
  }
  PresentEntry& e = table.insert(entry.host_range(), entry.host_ptr);
  e.refcount = 1;
  e.degraded = true;
}

void OffloadRuntime::begin_one(const MapEntry& entry, int device,
                               std::vector<PendingCopy>& copies) {
  if (entry.bytes == 0) {
    throw OffloadError(ErrorCode::InvalidArgument, "map entry with zero size",
                       device, entry.host_range());
  }
  if (exit_only(entry.type)) {
    throw MappingError(std::string{"map type '"} + to_string(entry.type) +
                           "' is only valid on target exit data",
                       ErrorCode::MappingViolation, device,
                       entry.host_range());
  }
  apu::Machine& m = hsa_.machine();
  m.sched().advance(m.costs().map_bookkeeping);

  if (!copy_managed(entry)) {
    if (engine_managed(entry)) {
      begin_one_adaptive(entry, device, copies);
      return;
    }
    // Zero-copy: no storage operation. Eager Maps additionally prefaults
    // the GPU page table for the mapped range on every map (with the
    // backoff ladder against transient syscall faults). An open breaker
    // forces the same eager prefault on the plain zero-copy
    // configurations: demand-fault storms are a hang site, so the pinned
    // device fronts the page-table work here instead.
    if (config_ == RuntimeConfig::EagerMaps) {
      prefault_with_retry(entry.host_range(), device);
    } else if (breaker_pinned(device)) {
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::BreakerPinnedMap,
                             .device = device,
                             .time = m.sched().now(),
                             .host_base = entry.host_ptr.value,
                             .bytes = entry.bytes});
      prefault_with_retry(entry.host_range(), device);
    }
    return;
  }

  bool do_copy = false;
  bool need_fallback = false;
  bool pinned_fallback = false;
  mem::VirtAddr dev_dst;
  {
    // Mapping-table transaction: the lookup and the insert (with the device
    // allocation in between) must be atomic with respect to other host
    // threads mapping the same range. The device address leaves the
    // critical section by value — the entry pointer must not.
    sim::LockGuard lock{table_mutex_, m.sched()};
    PresentTable& table =
        tables_.get(m.sched())[static_cast<std::size_t>(device)];
    PresentEntry* e = table.lookup_range(entry.host_range());
    if (e != nullptr) {
      if (!e->pinned) {
        ++e->refcount;
      }
      do_copy = !e->degraded && entry.always && copies_to_device(entry.type);
      dev_dst = e->device_addr(entry.host_ptr);
    } else if (breaker_pinned_locked(device)) {
      // Open breaker: new mappings skip the pool + DMA entirely (already-
      // mapped ranges above keep their device storage and semantics).
      need_fallback = true;
      pinned_fallback = true;
    } else {
      const hsa::PoolAllocResult r = hsa_.try_memory_pool_allocate(
          entry.bytes, "omp-map:" + entry.host_ptr.to_string(),
          /*count_in_ledger=*/true, device);
      if (!r.ok()) {
        // Device pool exhausted: remember the pressure (sticky, feeds the
        // Adaptive Maps cost model) and degrade this region to zero-copy
        // outside the lock.
        pressure_.get(m.sched())[static_cast<std::size_t>(device)] = 1;
        need_fallback = true;
      } else {
        if (r.reclaimed > 0) {
          // The pool fit only after the driver spilled SVM pages to DDR:
          // the node is under real pressure. Remember it (sticky, feeds
          // the Adaptive Maps cost model) — but the allocation succeeded,
          // so no fallback and no breaker trip.
          pressure_.get(m.sched())[static_cast<std::size_t>(device)] = 1;
        }
        e = &table.insert(entry.host_range(), r.addr);
        e->refcount = 1;
        do_copy = copies_to_device(entry.type);
        dev_dst = e->device_addr(entry.host_ptr);
      }
    }
  }
  if (need_fallback) {
    fallback_map_zero_copy(entry, device,
                           pinned_fallback
                               ? trace::FaultEvent::BreakerPinnedMap
                               : trace::FaultEvent::OomFallbackZeroCopy,
                           /*counts_as_trip=*/!pinned_fallback);
    return;
  }
  if (do_copy) {
    // Safe outside the lock: this thread holds a reference (refcount or
    // pin), so no concurrent release can free the device storage.
    copies.push_back(submit_copy(dev_dst, entry.host_ptr, entry.bytes,
                                 entry.host_range(),
                                 /*with_handler=*/false,
                                 /*count_in_ledger=*/true, device));
  }
}

void OffloadRuntime::begin_one_adaptive(const MapEntry& entry, int device,
                                        std::vector<PendingCopy>& copies) {
  apu::Machine& m = hsa_.machine();
  bool do_copy = false;
  bool do_prefault = false;
  bool need_fallback = false;
  mem::VirtAddr dev_dst;
  {
    // The classification is part of the mapping-table transaction: the
    // table lookup, the policy decision, and (for DmaCopy) the insert must
    // be atomic, or two threads could classify the same range differently
    // and race their inserts.
    sim::LockGuard lock{table_mutex_, m.sched()};
    PresentTable& table =
        tables_.get(m.sched())[static_cast<std::size_t>(device)];
    PresentEntry* e = table.lookup_range(entry.host_range());
    if (e != nullptr) {
      // A live DmaCopy classification: plain Copy reference semantics.
      if (!e->pinned) {
        ++e->refcount;
      }
      do_copy = !e->degraded && entry.always && copies_to_device(entry.type);
      dev_dst = e->device_addr(entry.host_ptr);
    } else {
      const mem::AddrRange range = entry.host_range();
      adapt::RegionFeatures features;
      features.range = range;
      features.pages = range.page_count(m.page_bytes());
      features.cpu_resident_pages = hsa_.memory().cpu_resident_pages(range);
      features.gpu_absent_pages =
          hsa_.memory().gpu_absent_pages(range, device);
      features.remote_pages = hsa_.memory().remote_pages(range, device);
      features.ddr_pages = hsa_.memory().ddr_pages(range);
      features.copies_in = copies_to_device(entry.type);
      features.copies_out = copies_to_host(entry.type);
      features.memory_pressure =
          pressure_.get(m.sched())[static_cast<std::size_t>(device)] != 0;
      features.breaker_open = breaker_pinned_locked(device);
      features.tenant_pressure =
          service_pressure_.get(m.sched())[static_cast<std::size_t>(device)];
      const adapt::Outcome out =
          adapt_.get(m.sched()).decide(device, features);
      trace::DecisionTrace& dtrace = decisions_.get(m.sched());
      if (out.fresh) {
        m.sched().advance(m.adapt_params().eval_cost);
        dtrace.record(trace::DecisionRecord{
            .decision = out.decision,
            .host_thread = m.sched().current().id(),
            .device = device,
            .time = m.sched().now(),
            .host_base = range.base.value,
            .bytes = range.bytes,
            .pages = features.pages,
            .cpu_resident_pages = features.cpu_resident_pages,
            .gpu_absent_pages = features.gpu_absent_pages,
            .predicted_copy_us = out.costs.copy_us,
            .predicted_zero_copy_us = out.costs.zero_copy_us,
            .predicted_eager_us = out.costs.eager_us,
            .revised = out.revised,
            .memory_pressure = features.memory_pressure,
            .breaker_open = features.breaker_open});
      } else {
        m.sched().advance(m.adapt_params().cache_hit_cost);
        dtrace.note_cache_hit();
      }
      switch (out.decision) {
        case adapt::Decision::DmaCopy: {
          const hsa::PoolAllocResult r = hsa_.try_memory_pool_allocate(
              entry.bytes, "omp-map:" + entry.host_ptr.to_string(),
              /*count_in_ledger=*/true, device);
          if (!r.ok()) {
            pressure_.get(m.sched())[static_cast<std::size_t>(device)] = 1;
            need_fallback = true;
            break;
          }
          if (r.reclaimed > 0) {
            // Fit only after spilling to DDR: sticky pressure, no fallback.
            pressure_.get(m.sched())[static_cast<std::size_t>(device)] = 1;
          }
          e = &table.insert(range, r.addr);
          e->refcount = 1;
          do_copy = copies_to_device(entry.type);
          dev_dst = e->device_addr(entry.host_ptr);
          break;
        }
        case adapt::Decision::ZeroCopy:
          break;
        case adapt::Decision::EagerPrefault:
          do_prefault = true;
          break;
      }
    }
  }
  // Like the static configurations, the expensive realizations run outside
  // the mapping lock: the DMA target is pinned by the refcount we hold,
  // and the prefault only touches the driver's page tables.
  if (need_fallback) {
    fallback_map_zero_copy(entry, device,
                           trace::FaultEvent::OomFallbackZeroCopy,
                           /*counts_as_trip=*/true);
    return;
  }
  if (do_prefault) {
    prefault_with_retry(entry.host_range(), device);
  }
  if (do_copy) {
    copies.push_back(submit_copy(dev_dst, entry.host_ptr, entry.bytes,
                                 entry.host_range(),
                                 /*with_handler=*/false,
                                 /*count_in_ledger=*/true, device));
  }
}

void OffloadRuntime::end_copy_one(const MapEntry& entry, int device,
                                  std::vector<PendingCopy>& copies) {
  apu::Machine& m = hsa_.machine();
  m.sched().advance(m.costs().map_bookkeeping);
  if (!copy_managed(entry) && !engine_managed(entry)) {
    return;
  }
  bool do_copy = false;
  mem::VirtAddr dev_src;
  {
    // The lookup, the refcount read, and the copy-back decision are one
    // transaction under the mapping lock: without it, a concurrent
    // end_release_one can decrement-and-erase between our lookup and the
    // decision, leaving a dangling entry pointer — exactly where
    // libomptarget takes its per-process lock.
    sim::LockGuard lock{table_mutex_, m.sched()};
    PresentEntry* const e =
        tables_.get(m.sched())[static_cast<std::size_t>(device)].lookup_range(
            entry.host_range());
    if (e == nullptr) {
      if (engine_managed(entry)) {
        return;  // classified zero-copy/prefault: data already in place
      }
      if (exit_only(entry.type)) {
        return;  // release/delete of absent data is a no-op (OpenMP 5.x)
      }
      throw MappingError("target_data_end for unmapped range at " +
                             entry.host_ptr.to_string(),
                         ErrorCode::MappingViolation, device,
                         entry.host_range());
    }
    if (e->degraded) {
      return;  // host memory is the single copy: nothing to transfer back
    }
    const bool last_ref = !e->pinned && e->refcount == 1;
    do_copy = copies_to_host(entry.type) && (entry.always || last_ref);
    dev_src = e->device_addr(entry.host_ptr);
  }
  if (do_copy) {
    // Outside the lock: the caller still holds its reference until the
    // release pass of this same target_data_end, so the storage is live.
    copies.push_back(submit_copy(entry.host_ptr, dev_src, entry.bytes,
                                 entry.host_range(),
                                 /*with_handler=*/true,
                                 /*count_in_ledger=*/true, device));
  }
}

void OffloadRuntime::end_release_one(const MapEntry& entry, int device) {
  const bool adaptive = engine_managed(entry);
  if (!copy_managed(entry) && !adaptive) {
    return;
  }
  sim::Scheduler& sched = hsa_.machine().sched();
  sim::LockGuard lock{table_mutex_, sched};
  PresentTable& table =
      tables_.get(sched)[static_cast<std::size_t>(device)];
  PresentEntry* e = table.lookup_range(entry.host_range());
  if (e == nullptr) {
    if (adaptive) {
      // Zero-copy-classified range: the mapping lifetime the policy's
      // `decide` opened ends here.
      adapt_.get(sched).release(device, entry.host_range());
    }
    return;
  }
  if (e->pinned) {
    return;
  }
  if (entry.type == MapType::Delete) {
    e->refcount = 0;  // delete drops the mapping regardless of the count
  } else if (e->refcount > 0) {
    --e->refcount;
  }
  if (e->refcount == 0) {
    const mem::VirtAddr dev = e->device_base;
    const mem::VirtAddr host_base = e->host.base;
    const bool degraded = e->degraded;
    if (!degraded) {
      // Degraded entries alias the host allocation — there is no pool
      // storage to return (and pool_free of host memory would throw).
      hsa_.memory_pool_free(dev);
    }
    table.erase(host_base);
    if (adaptive) {
      // The DmaCopy classification's lifetime ends with the table entry.
      adapt_.get(sched).release(device, entry.host_range());
    }
  }
}

void OffloadRuntime::check_distinct(std::span<const MapEntry> maps) {
  // OpenMP restriction: a list item may appear at most once in the map
  // clauses of a construct. Duplicates would double-count references and
  // corrupt copy-back decisions, so reject them loudly.
  for (std::size_t i = 0; i < maps.size(); ++i) {
    for (std::size_t j = i + 1; j < maps.size(); ++j) {
      const mem::AddrRange a = maps[i].host_range();
      const mem::AddrRange b = maps[j].host_range();
      if (mem::ranges_overlap(a, b)) {
        throw MappingError("overlapping map entries at " +
                           maps[i].host_ptr.to_string() + " and " +
                           maps[j].host_ptr.to_string() +
                           " on one construct");
      }
    }
  }
}

void OffloadRuntime::target_data_begin(std::span<const MapEntry> maps,
                                       int device) {
  if (recorder_ != nullptr) {
    recorder_->record(hsa_.machine().sched(),
                      make_map_op(check::OpKind::DataBegin, maps, device));
  }
  ensure_initialized();
  check_device(device);
  check_distinct(maps);
  std::vector<PendingCopy> copies;
  for (const MapEntry& entry : maps) {
    begin_one(entry, device, copies);
  }
  wait_all(copies);
}

void OffloadRuntime::target_data_end(std::span<const MapEntry> maps,
                                     int device) {
  if (recorder_ != nullptr) {
    recorder_->record(hsa_.machine().sched(),
                      make_map_op(check::OpKind::DataEnd, maps, device));
  }
  ensure_initialized();
  check_device(device);
  check_distinct(maps);
  std::vector<PendingCopy> copies;
  for (const MapEntry& entry : maps) {
    end_copy_one(entry, device, copies);
  }
  wait_all(copies);
  for (const MapEntry& entry : maps) {
    end_release_one(entry, device);
  }
}

void OffloadRuntime::target_enter_data(std::span<const MapEntry> maps,
                                       int device) {
  if (recorder_ != nullptr) {
    recorder_->record(hsa_.machine().sched(),
                      make_map_op(check::OpKind::EnterData, maps, device));
  }
  // The construct is recorded as one EnterData op; suppress the nested
  // DataBegin record the implementation below would otherwise add.
  check::SuppressScope suppress{recorder_, hsa_.machine().sched()};
  for (const MapEntry& entry : maps) {
    if (exit_only(entry.type)) {
      throw MappingError(std::string{"map type '"} + to_string(entry.type) +
                         "' is not valid on target enter data");
    }
  }
  target_data_begin(maps, device);
}

void OffloadRuntime::target_exit_data(std::span<const MapEntry> maps,
                                      int device) {
  if (recorder_ != nullptr) {
    recorder_->record(hsa_.machine().sched(),
                      make_map_op(check::OpKind::ExitData, maps, device));
  }
  check::SuppressScope suppress{recorder_, hsa_.machine().sched()};
  target_data_end(maps, device);
}

void OffloadRuntime::target_update_to(const MapEntry& entry, int device) {
  if (recorder_ != nullptr) {
    recorder_->record(
        hsa_.machine().sched(),
        make_map_op(check::OpKind::UpdateTo, {&entry, 1}, device));
  }
  ensure_initialized();
  check_device(device);
  apu::Machine& m = hsa_.machine();
  m.sched().advance(m.costs().map_bookkeeping);
  if (!copy_managed(entry) && !engine_managed(entry)) {
    return;
  }
  mem::VirtAddr dev_dst;
  {
    // Lookup + device-address resolution under the mapping lock; the
    // transfer itself runs outside it (libomptarget releases the lock
    // before issuing the DMA). A conforming program keeps the mapping
    // alive across its own `target update`, so the address stays valid.
    sim::LockGuard lock{table_mutex_, m.sched()};
    PresentEntry* const e =
        tables_.get(m.sched())[static_cast<std::size_t>(device)].lookup_range(
            entry.host_range());
    if (e == nullptr) {
      if (engine_managed(entry)) {
        return;  // zero-copy-classified: kernels read host memory directly
      }
      throw MappingError("target update to() of unmapped range at " +
                             entry.host_ptr.to_string(),
                         ErrorCode::MappingViolation, device,
                         entry.host_range());
    }
    if (e->degraded) {
      return;  // degraded to zero-copy: host memory is the single copy
    }
    dev_dst = e->device_addr(entry.host_ptr);
  }
  std::vector<PendingCopy> copies;
  copies.push_back(submit_copy(dev_dst, entry.host_ptr, entry.bytes,
                               entry.host_range(), /*with_handler=*/false,
                               /*count_in_ledger=*/true, device));
  wait_all(copies);
}

void OffloadRuntime::target_update_from(const MapEntry& entry, int device) {
  if (recorder_ != nullptr) {
    recorder_->record(
        hsa_.machine().sched(),
        make_map_op(check::OpKind::UpdateFrom, {&entry, 1}, device));
  }
  ensure_initialized();
  check_device(device);
  apu::Machine& m = hsa_.machine();
  m.sched().advance(m.costs().map_bookkeeping);
  if (!copy_managed(entry) && !engine_managed(entry)) {
    return;
  }
  mem::VirtAddr dev_src;
  {
    // Same transaction discipline as target_update_to.
    sim::LockGuard lock{table_mutex_, m.sched()};
    PresentEntry* const e =
        tables_.get(m.sched())[static_cast<std::size_t>(device)].lookup_range(
            entry.host_range());
    if (e == nullptr) {
      if (engine_managed(entry)) {
        return;  // zero-copy-classified: host memory is the single copy
      }
      throw MappingError("target update from() of unmapped range at " +
                             entry.host_ptr.to_string(),
                         ErrorCode::MappingViolation, device,
                         entry.host_range());
    }
    if (e->degraded) {
      return;  // degraded to zero-copy: host memory is the single copy
    }
    dev_src = e->device_addr(entry.host_ptr);
  }
  std::vector<PendingCopy> copies;
  copies.push_back(submit_copy(entry.host_ptr, dev_src, entry.bytes,
                               entry.host_range(), /*with_handler=*/true,
                               /*count_in_ledger=*/true, device));
  wait_all(copies);
}

namespace {

hsa::Access access_for(MapType t) {
  switch (t) {
    case MapType::To:
      return hsa::Access::Read;
    case MapType::From:
      return hsa::Access::Write;
    case MapType::ToFrom:
    case MapType::Alloc:
    case MapType::Release:
    case MapType::Delete:
      return hsa::Access::ReadWrite;
  }
  return hsa::Access::ReadWrite;
}

/// Build the kernel launch for a region whose data has been entered.
/// `device` is the region's device number with `kDeviceAuto` resolved.
hsa::KernelLaunch build_launch(const TargetRegion& region,
                               const ArgTranslator& translator, int device) {
  hsa::KernelLaunch launch;
  launch.name = region.name;
  launch.compute = region.compute;
  launch.device = device;
  launch.buffers.reserve(region.maps.size() + region.uses.size());
  for (const MapEntry& entry : region.maps) {
    launch.buffers.push_back(hsa::BufferAccess{
        translator.device(entry.host_ptr), entry.bytes, access_for(entry.type)});
  }
  for (const BufferUse& use : region.uses) {
    launch.buffers.push_back(hsa::BufferAccess{translator.device(use.addr),
                                               use.bytes, use.access});
  }
  return launch;
}

}  // namespace

void OffloadRuntime::await_kernel(hsa::Signal sig,
                                  const hsa::KernelLaunch& launch,
                                  int host_thread) {
  hsa_.signal_wait_scacquire(sig);
  if (!sig.aborted()) {
    return;
  }
  // The kernel hung and the watchdog tore down its queue. The hung attempt
  // executed nothing (all-or-nothing), so a replay reproduces the
  // fault-free run's functional effects exactly once.
  apu::Machine& m = hsa_.machine();
  const apu::WatchdogConfig& wd = hsa_.watchdog().config();
  const int max_replays = m.degrade_params().watchdog_max_replays;
  for (int attempt = 1; sig.aborted(); ++attempt) {
    if (!wd.recover || attempt > max_replays) {
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::RegionFailed,
                             .device = launch.device,
                             .time = m.sched().now(),
                             .attempt = attempt - 1});
      throw OffloadError(ErrorCode::OperationHung,
                         "kernel '" + launch.name +
                             "' hung; the watchdog aborted it" +
                             (wd.recover ? " and replays were exhausted"
                                         : " (abort mode)"),
                         launch.device);
    }
    hsa_.record_fault(
        trace::FaultRecord{.event = trace::FaultEvent::WatchdogReplay,
                           .device = launch.device,
                           .time = m.sched().now(),
                           .attempt = attempt});
    sig = hsa_.dispatch_kernel(launch, host_thread);
    hsa_.signal_wait_scacquire(sig);
    if (!sig.aborted()) {
      hsa_.record_fault(
          trace::FaultRecord{.event = trace::FaultEvent::WatchdogRecovered,
                             .device = launch.device,
                             .time = m.sched().now(),
                             .attempt = attempt});
    }
  }
}

int OffloadRuntime::resolve_device(const TargetRegion& region) const {
  // Bytes-weighted vote: the socket homing the most mapped data wins.
  // Allocations with a pending first-touch home have no placement to vote
  // with yet; interleaved allocations vote with their stripe origin.
  std::vector<std::uint64_t> votes(static_cast<std::size_t>(device_count()),
                                   0);
  auto tally = [&](mem::VirtAddr addr, std::uint64_t bytes) {
    const mem::Allocation* const a = hsa_.memory().space().find(addr);
    if (a == nullptr || a->home_pending()) {
      return;
    }
    const int home = a->home_socket();
    if (home >= 0 && home < device_count()) {
      votes[static_cast<std::size_t>(home)] += bytes;
    }
  };
  for (const MapEntry& entry : region.maps) {
    tally(entry.host_ptr, entry.bytes);
  }
  for (const BufferUse& use : region.uses) {
    tally(use.addr, use.bytes);
  }
  int best = 0;
  for (int d = 1; d < device_count(); ++d) {
    if (votes[static_cast<std::size_t>(d)] >
        votes[static_cast<std::size_t>(best)]) {
      best = d;
    }
  }
  return best;
}

void OffloadRuntime::target(const TargetRegion& region) {
  ensure_initialized();
  const int device =
      region.device == kDeviceAuto ? resolve_device(region) : region.device;
  check_device(device);
  if (recorder_ != nullptr) {
    recorder_->record(hsa_.machine().sched(),
                      make_region_op(region, device, /*nowait=*/false, 0));
  }
  // One Kernel op stands for the whole construct; the data-begin/data-end
  // halves below must not add their own records (per-thread suppression:
  // the construct yields, and other threads keep recording meanwhile).
  check::SuppressScope suppress{recorder_, hsa_.machine().sched()};
  target_data_begin(region.maps, device);

  // Unguarded table reference: argument translation only resolves entries
  // this thread's data-begin pinned (refcounts held until the data-end
  // below), and std::map references stay valid while *other* entries are
  // inserted or erased concurrently — the same reasoning libomptarget uses
  // to translate args after dropping its mapping lock.
  const ArgTranslator translator{
      tables_.unguarded()[static_cast<std::size_t>(device)],
      zero_copy(), &hsa_.memory().space()};
  hsa::KernelLaunch launch = build_launch(region, translator, device);
  if (region.body) {
    launch.body = [&region, &translator](hsa::KernelContext& ctx) {
      region.body(ctx, translator);
    };
  }
  const int host_thread = hsa_.machine().sched().current().id();
  await_kernel(hsa_.dispatch_kernel(launch, host_thread), launch,
               host_thread);

  target_data_end(region.maps, device);
}

TargetTask OffloadRuntime::target_nowait(const TargetRegion& region,
                                         std::span<const TargetTask*> depends) {
  ensure_initialized();
  const int device =
      region.device == kDeviceAuto ? resolve_device(region) : region.device;
  check_device(device);
  std::uint64_t token = 0;
  if (recorder_ != nullptr) {
    token = recorder_->issue_token(hsa_.machine().sched());
    recorder_->record(hsa_.machine().sched(),
                      make_region_op(region, device, /*nowait=*/true, token));
  }
  check::SuppressScope suppress{recorder_, hsa_.machine().sched()};
  sim::TimePoint not_before;
  std::vector<hsa::Signal> dep_signals;
  dep_signals.reserve(depends.size());
  for (const TargetTask* dep : depends) {
    if (dep == nullptr || !dep->valid()) {
      throw MappingError("target_nowait: invalid dependence",
                         ErrorCode::TaskMisuse, region.device);
    }
    dep_signals.push_back(dep->signal_);
    if (!dep->signal_.is_complete()) {
      // The dependence is hung in flight (fault injection): its completion
      // time does not exist yet, so block until the watchdog resolves it —
      // or, with no watchdog, deadlock with a diagnostic naming the stuck
      // signal. The dependence's own replay happens at its target_wait.
      hsa_.signal_wait_scacquire(dep->signal_);
    }
    not_before = max(not_before, dep->signal_.complete_at());
  }
  target_data_begin(region.maps, device);

  // Unguarded for the same refcount-pinning reason as in target().
  const ArgTranslator translator{
      tables_.unguarded()[static_cast<std::size_t>(device)],
      zero_copy(), &hsa_.memory().space()};
  hsa::KernelLaunch launch = build_launch(region, translator, device);
  if (region.body) {
    // The functional body runs at dispatch; a conforming program does not
    // observe the results before target_wait anyway. Captured by value
    // (body copy + translator copy): the launch outlives this frame inside
    // the task, where target_wait may replay it after a watchdog abort.
    launch.body = [body = region.body, translator](hsa::KernelContext& ctx) {
      body(ctx, translator);
    };
  }
  TargetTask task;
  task.host_thread_ = hsa_.machine().sched().current().id();
  task.signal_ =
      hsa_.dispatch_kernel(launch, task.host_thread_, not_before, dep_signals);
  task.launch_ = std::move(launch);
  task.maps_.assign(region.maps.begin(), region.maps.end());
  task.device_ = device;
  task.check_token_ = token;
  task.kernel_named_ = true;
  return task;
}

void OffloadRuntime::target_wait(TargetTask& task) {
  if (task.completed_) {
    throw MappingError("target_wait: task already completed",
                       ErrorCode::TaskMisuse, task.device_);
  }
  if (!task.valid()) {
    throw MappingError("target_wait: empty task", ErrorCode::TaskMisuse);
  }
  if (recorder_ != nullptr) {
    // The wait op carries a copy of the dispatch's map list so the
    // analyzer can replay the data-end half at the correct point of the
    // *waiting* thread's program order.
    check::IrOp op =
        make_map_op(check::OpKind::KernelWait, task.maps_, task.device_);
    op.name = task.launch_.name;
    op.token = task.check_token_;
    recorder_->record(hsa_.machine().sched(), std::move(op));
  }
  check::SuppressScope suppress{recorder_, hsa_.machine().sched()};
  await_kernel(task.signal_, task.launch_, task.host_thread_);
  target_data_end(task.maps_, task.device_);
  task.completed_ = true;
}

mem::VirtAddr OffloadRuntime::device_alloc(std::uint64_t bytes,
                                           std::string name, int device) {
  ensure_initialized();
  check_device(device);
  std::string label = recorder_ != nullptr ? name : std::string{};
  const mem::VirtAddr addr = hsa_.memory_pool_allocate(
      bytes, std::move(name), /*count_in_ledger=*/true, device);
  if (recorder_ != nullptr) {
    sim::Scheduler& sched = hsa_.machine().sched();
    recorder_->add_buffer(sched, mem::AddrRange{addr, bytes}, label,
                          check::BufKind::DevicePool);
    check::IrOp op;
    op.kind = check::OpKind::DeviceAlloc;
    op.device = device;
    op.range = mem::AddrRange{addr, bytes};
    recorder_->record(sched, std::move(op));
  }
  return addr;
}

void OffloadRuntime::device_free(mem::VirtAddr ptr) {
  ensure_initialized();
  if (recorder_ != nullptr) {
    const mem::Allocation* const a = hsa_.memory().space().find(ptr);
    check::IrOp op;
    op.kind = check::OpKind::DeviceFree;
    op.range = a != nullptr ? a->range() : mem::AddrRange{ptr, 0};
    recorder_->record(hsa_.machine().sched(), std::move(op));
  }
  hsa_.memory_pool_free(ptr);
}

void OffloadRuntime::target_memcpy(mem::VirtAddr dst, mem::VirtAddr src,
                                   std::uint64_t bytes) {
  ensure_initialized();
  if (recorder_ != nullptr) {
    check::IrOp op;
    op.kind = check::OpKind::Memcpy;
    op.range = mem::AddrRange{dst, bytes};
    op.src = mem::AddrRange{src, bytes};
    recorder_->record(hsa_.machine().sched(), std::move(op));
  }
  // The copy runs on the SDMA engine of the socket homing the destination —
  // writes stay local to the engine, reads cross the fabric.
  int device = 0;
  if (const mem::Allocation* const a = hsa_.memory().space().find(dst);
      a != nullptr && !a->home_pending()) {
    const int home = a->home_socket();
    if (home >= 0 && home < device_count()) {
      device = home;
    }
  }
  std::vector<PendingCopy> copies;
  copies.push_back(submit_copy(dst, src, bytes, mem::AddrRange{dst, bytes},
                               /*with_handler=*/true, /*count_in_ledger=*/true,
                               device));
  wait_all(copies);
}

std::uint64_t OffloadRuntime::migrate_to_device(mem::AddrRange range,
                                                int device) {
  ensure_initialized();
  check_device(device);
  if (recorder_ != nullptr) {
    check::IrOp op;
    op.kind = check::OpKind::Migrate;
    op.device = device;
    op.range = range;
    recorder_->record(hsa_.machine().sched(), std::move(op));
  }
  {
    // Placement is a pricing input: cached Adaptive Maps decisions for the
    // range are stale the moment the home moves.
    sim::LockGuard lock{table_mutex_, hsa_.machine().sched()};
    adapt_.get(hsa_.machine().sched()).forget(range);
  }
  return hsa_.migrate_pages(range, device);
}

}  // namespace zc::omp
