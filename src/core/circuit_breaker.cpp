#include "zc/core/circuit_breaker.hpp"

#include <algorithm>

namespace zc::omp {

using sim::Duration;
using sim::TimePoint;

std::vector<CircuitBreaker::Transition> CircuitBreaker::advance_to(
    TimePoint now) {
  std::vector<Transition> out;
  if (state_ == State::Open) {
    const TimePoint half_open_at = opened_at_ + cooldown_;
    if (now >= half_open_at) {
      state_ = State::HalfOpen;
      out.push_back({State::HalfOpen, half_open_at});
    }
  }
  if (state_ == State::HalfOpen) {
    // A full further cooldown of quiet closes the breaker.
    const TimePoint close_at = opened_at_ + cooldown_ + cooldown_;
    if (now >= close_at) {
      state_ = State::Closed;
      recent_.clear();
      out.push_back({State::Closed, close_at});
    }
  }
  return out;
}

std::vector<CircuitBreaker::Transition> CircuitBreaker::record_trip(
    TimePoint now) {
  std::vector<Transition> out = advance_to(now);
  ++total_trips_;
  switch (state_) {
    case State::Closed: {
      std::erase_if(recent_,
                    [&](TimePoint t) { return now - t > window_; });
      recent_.push_back(now);
      if (static_cast<int>(recent_.size()) >= threshold_) {
        state_ = State::Open;
        opened_at_ = now;
        recent_.clear();
        ++times_opened_;
        out.push_back({State::Open, now});
      }
      break;
    }
    case State::Open:
      // Still tripping while open: push the quiet period out.
      opened_at_ = now;
      break;
    case State::HalfOpen:
      // The probe failed; re-open immediately.
      state_ = State::Open;
      opened_at_ = now;
      ++times_opened_;
      out.push_back({State::Open, now});
      break;
  }
  return out;
}

}  // namespace zc::omp
