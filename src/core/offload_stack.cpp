#include "zc/core/offload_stack.hpp"

namespace zc::omp {

apu::Machine::Config OffloadStack::machine_config_for(RuntimeConfig config,
                                                      sim::JitterParams jitter,
                                                      std::uint64_t seed) {
  apu::Machine::Config cfg;
  cfg.kind = apu::MachineKind::ApuMi300a;
  cfg.costs = apu::mi300a_costs();
  cfg.jitter = jitter;
  cfg.seed = seed;
  switch (config) {
    case RuntimeConfig::LegacyCopy:
      cfg.env.hsa_xnack = false;
      break;
    case RuntimeConfig::UnifiedSharedMemory:
    case RuntimeConfig::ImplicitZeroCopy:
      cfg.env.hsa_xnack = true;
      break;
    case RuntimeConfig::EagerMaps:
      cfg.env.hsa_xnack = true;
      cfg.env.ompx_eager_maps = true;
      break;
    case RuntimeConfig::AdaptiveMaps:
      cfg.env.hsa_xnack = true;
      cfg.env.ompx_apu_maps = apu::ApuMapsMode::Adaptive;
      break;
  }
  return cfg;
}

ProgramBinary OffloadStack::program_for(RuntimeConfig config,
                                        ProgramBinary program) {
  // Build the source with the requires pragma when USM is requested. A
  // binary that already carries the requirement keeps it — the paper's
  // §IV-B point: such binaries cannot be switched to other configurations.
  if (config == RuntimeConfig::UnifiedSharedMemory) {
    program.requires_unified_shared_memory = true;
  }
  return program;
}

}  // namespace zc::omp
