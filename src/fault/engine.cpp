#include "zc/fault/engine.hpp"

namespace zc::fault {

Injection FaultEngine::consult(Site site, sim::TimePoint now) {
  const auto idx = static_cast<std::size_t>(site);
  const std::uint64_t call = ++calls_[idx];
  if (schedule_.empty()) {
    return {};
  }
  for (const Clause& c : schedule_.clauses) {
    if (c.site != site) {
      continue;
    }
    bool fire = false;
    switch (c.trigger.mode) {
      case Trigger::Mode::CallRange:
        fire = call >= c.trigger.call_from && call <= c.trigger.call_to;
        break;
      case Trigger::Mode::TimeWindow:
        fire = now >= c.trigger.t_from && now <= c.trigger.t_to;
        break;
      case Trigger::Mode::Probability:
        // Drawn even when an earlier clause could fire? No — clauses are
        // first-match, and we only reach this draw when no earlier clause
        // fired, so the stream stays a pure function of the consult order.
        fire = rng_.bernoulli(c.trigger.probability);
        break;
    }
    if (fire) {
      ++injected_[idx];
      return Injection{c.kind, c.factor};
    }
  }
  return {};
}

std::uint64_t FaultEngine::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) {
    total += n;
  }
  return total;
}

}  // namespace zc::fault
