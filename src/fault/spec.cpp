#include "zc/fault/spec.hpp"

#include <charconv>
#include <cstdio>

namespace zc::fault {

namespace {

struct SiteKind {
  Site site;
  Kind kind;
};

SiteKind site_kind(const std::string& token, const std::string& clause) {
  if (token == "oom") {
    return {Site::PoolAlloc, Kind::Oom};
  }
  if (token == "eintr") {
    return {Site::SvmPrefault, Kind::Eintr};
  }
  if (token == "ebusy") {
    return {Site::SvmPrefault, Kind::Ebusy};
  }
  if (token == "sdma") {
    return {Site::AsyncCopy, Kind::CopyError};
  }
  if (token == "xnack") {
    return {Site::XnackReplay, Kind::ReplayStorm};
  }
  if (token == "kernel_hang") {
    return {Site::KernelLaunch, Kind::KernelHang};
  }
  if (token == "sdma_stall") {
    return {Site::AsyncCopy, Kind::SdmaStall};
  }
  if (token == "prefault_hang") {
    return {Site::SvmPrefault, Kind::PrefaultHang};
  }
  if (token == "xnack_livelock") {
    return {Site::XnackReplay, Kind::XnackLivelock};
  }
  if (token == "evict_storm") {
    return {Site::Eviction, Kind::EvictStorm};
  }
  if (token == "migration_stall") {
    return {Site::AutoMigrate, Kind::MigrationStall};
  }
  if (token == "thp_split_storm") {
    return {Site::ThpSplit, Kind::ThpSplitStorm};
  }
  if (token == "counter_loss") {
    return {Site::AccessCounter, Kind::CounterLoss};
  }
  if (token == "tenant_burst") {
    return {Site::TenantBurst, Kind::TenantBurst};
  }
  if (token == "admission_flap") {
    return {Site::AdmissionFlap, Kind::AdmissionFlap};
  }
  throw FaultSpecError("fault spec: unknown site '" + token + "' in clause '" +
                       clause +
                       "' (expected oom|eintr|ebusy|sdma|xnack|kernel_hang|"
                       "sdma_stall|prefault_hang|xnack_livelock|evict_storm|"
                       "migration_stall|thp_split_storm|counter_loss|"
                       "tenant_burst|admission_flap)");
}

std::uint64_t parse_u64(std::string_view text, const std::string& clause) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw FaultSpecError("fault spec: bad integer '" + std::string{text} +
                         "' in clause '" + clause + "'");
  }
  return value;
}

double parse_double(std::string_view text, const std::string& clause) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw FaultSpecError("fault spec: bad number '" + std::string{text} +
                         "' in clause '" + clause + "'");
  }
  return value;
}

/// Parse "<N>us" (the unit suffix is optional) into a TimePoint.
sim::TimePoint parse_time(std::string_view text, const std::string& clause) {
  if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    text.remove_suffix(2);
  }
  const double us = parse_double(text, clause);
  if (us < 0.0) {
    throw FaultSpecError("fault spec: negative time in clause '" + clause +
                         "'");
  }
  return sim::TimePoint::zero() + sim::Duration::from_us(us);
}

Trigger parse_trigger(std::string_view text, const std::string& clause) {
  Trigger t;
  if (text.rfind("call=", 0) == 0) {
    text.remove_prefix(5);
    t.mode = Trigger::Mode::CallRange;
    const std::size_t dots = text.find("..");
    if (dots == std::string_view::npos) {
      t.call_from = t.call_to = parse_u64(text, clause);
    } else {
      t.call_from = parse_u64(text.substr(0, dots), clause);
      t.call_to = parse_u64(text.substr(dots + 2), clause);
    }
    if (t.call_from == 0 || t.call_to < t.call_from) {
      throw FaultSpecError("fault spec: call window must be 1-based and "
                           "non-empty in clause '" + clause + "'");
    }
    return t;
  }
  if (text.rfind("t=", 0) == 0) {
    text.remove_prefix(2);
    t.mode = Trigger::Mode::TimeWindow;
    const std::size_t dots = text.find("..");
    if (dots == std::string_view::npos) {
      t.t_from = parse_time(text, clause);
      t.t_to = sim::TimePoint::max();
    } else {
      t.t_from = parse_time(text.substr(0, dots), clause);
      t.t_to = parse_time(text.substr(dots + 2), clause);
    }
    if (t.t_to < t.t_from) {
      throw FaultSpecError("fault spec: empty time window in clause '" +
                           clause + "'");
    }
    return t;
  }
  if (text.rfind("p=", 0) == 0) {
    text.remove_prefix(2);
    t.mode = Trigger::Mode::Probability;
    t.probability = parse_double(text, clause);
    if (t.probability < 0.0 || t.probability > 1.0) {
      throw FaultSpecError("fault spec: probability outside [0,1] in clause '" +
                           clause + "'");
    }
    return t;
  }
  throw FaultSpecError("fault spec: unknown trigger '" + std::string{text} +
                       "' in clause '" + clause +
                       "' (expected call=, t=, or p=)");
}

Clause parse_clause(const std::string& text) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) {
    throw FaultSpecError("fault spec: clause '" + text +
                         "' has no '@trigger' part");
  }
  const SiteKind sk = site_kind(text.substr(0, at), text);
  Clause clause;
  clause.site = sk.site;
  clause.kind = sk.kind;

  std::string_view rest{text};
  rest.remove_prefix(at + 1);
  std::size_t colon = rest.find(':');
  clause.trigger = parse_trigger(rest.substr(0, colon), text);
  while (colon != std::string_view::npos) {
    rest.remove_prefix(colon + 1);
    colon = rest.find(':');
    const std::string_view option = rest.substr(0, colon);
    if (option.size() >= 2 && option[0] == 'x') {
      clause.factor = parse_double(option.substr(1), text);
      if (clause.factor <= 0.0) {
        throw FaultSpecError("fault spec: non-positive latency factor in "
                             "clause '" + text + "'");
      }
    } else {
      throw FaultSpecError("fault spec: unknown option '" +
                           std::string{option} + "' in clause '" + text + "'");
    }
  }
  return clause;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string site_token(const Clause& c) {
  switch (c.kind) {
    case Kind::Oom:
      return "oom";
    case Kind::Eintr:
      return "eintr";
    case Kind::Ebusy:
      return "ebusy";
    case Kind::CopyError:
      return "sdma";
    case Kind::ReplayStorm:
      return "xnack";
    case Kind::KernelHang:
      return "kernel_hang";
    case Kind::SdmaStall:
      return "sdma_stall";
    case Kind::PrefaultHang:
      return "prefault_hang";
    case Kind::XnackLivelock:
      return "xnack_livelock";
    case Kind::EvictStorm:
      return "evict_storm";
    case Kind::MigrationStall:
      return "migration_stall";
    case Kind::ThpSplitStorm:
      return "thp_split_storm";
    case Kind::CounterLoss:
      return "counter_loss";
    case Kind::TenantBurst:
      return "tenant_burst";
    case Kind::AdmissionFlap:
      return "admission_flap";
    case Kind::None:
      break;
  }
  return "?";
}

/// True for the kinds whose clause carries a meaningful latency factor
/// (rendered back as ":xF" when it differs from the default).
bool has_factor(Kind k) {
  return k == Kind::ReplayStorm || k == Kind::EvictStorm ||
         k == Kind::MigrationStall || k == Kind::TenantBurst;
}

}  // namespace

Schedule parse_spec(const std::string& spec) {
  Schedule out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    if (spec.empty()) {
      break;
    }
    const std::size_t end = spec.find(';', begin);
    const std::string clause =
        spec.substr(begin, end == std::string::npos ? end : end - begin);
    if (clause.empty()) {
      throw FaultSpecError("fault spec: empty clause in '" + spec + "'");
    }
    out.clauses.push_back(parse_clause(clause));
    if (end == std::string::npos) {
      break;
    }
    begin = end + 1;
  }
  return out;
}

std::string to_string(const Schedule& schedule) {
  std::string s;
  for (const Clause& c : schedule.clauses) {
    if (!s.empty()) {
      s += ';';
    }
    s += site_token(c);
    s += '@';
    switch (c.trigger.mode) {
      case Trigger::Mode::CallRange:
        s += "call=" + std::to_string(c.trigger.call_from);
        if (c.trigger.call_to != c.trigger.call_from) {
          s += ".." + std::to_string(c.trigger.call_to);
        }
        break;
      case Trigger::Mode::TimeWindow:
        s += "t=" + format_double(c.trigger.t_from.since_start().us()) + "us";
        if (c.trigger.t_to != sim::TimePoint::max()) {
          s += ".." + format_double(c.trigger.t_to.since_start().us()) + "us";
        }
        break;
      case Trigger::Mode::Probability:
        s += "p=" + format_double(c.trigger.probability);
        break;
    }
    if (has_factor(c.kind) && c.factor != 8.0) {
      s += ":x" + format_double(c.factor);
    }
  }
  return s;
}

}  // namespace zc::fault
