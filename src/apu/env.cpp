#include "zc/apu/env.hpp"

#include <algorithm>
#include <cctype>

namespace zc::apu {

namespace {

bool truthy(std::string v) {
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

}  // namespace

RunEnvironment RunEnvironment::from_env(
    const std::map<std::string, std::string>& env) {
  RunEnvironment out;
  if (auto it = env.find("HSA_XNACK"); it != env.end()) {
    out.hsa_xnack = truthy(it->second);
  }
  if (auto it = env.find("OMPX_APU_MAPS"); it != env.end()) {
    out.ompx_apu_maps = truthy(it->second);
  }
  if (auto it = env.find("OMPX_EAGER_ZERO_COPY_MAPS"); it != env.end()) {
    out.ompx_eager_maps = truthy(it->second);
  }
  if (auto it = env.find("THP"); it != env.end()) {
    out.transparent_huge_pages = truthy(it->second);
  }
  return out;
}

std::string RunEnvironment::to_string() const {
  auto flag = [](bool b) { return b ? "1" : "0"; };
  std::string s;
  s += "HSA_XNACK=";
  s += flag(hsa_xnack);
  s += " OMPX_APU_MAPS=";
  s += flag(ompx_apu_maps);
  s += " OMPX_EAGER_ZERO_COPY_MAPS=";
  s += flag(ompx_eager_maps);
  s += " THP=";
  s += flag(transparent_huge_pages);
  return s;
}

}  // namespace zc::apu
