#include "zc/apu/env.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "zc/fault/spec.hpp"

namespace zc::apu {

namespace {

std::string lowered(std::string v) {
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return v;
}

bool truthy(const std::string& key, const std::string& raw) {
  const std::string v = lowered(raw);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  throw EnvError(key + "=" + raw + " is not a recognized boolean value");
}

ApuMapsMode apu_maps_mode(const std::string& key, const std::string& raw) {
  if (lowered(raw) == "adaptive") {
    return ApuMapsMode::Adaptive;
  }
  return truthy(key, raw) ? ApuMapsMode::On : ApuMapsMode::Off;
}

/// Mode plus the optional `:pruned` suffix of `OMPX_APU_RACE_CHECK`.
struct RaceCheckSetting {
  RaceCheckMode mode = RaceCheckMode::Off;
  bool pruned = false;
};

RaceCheckSetting race_check_mode(const std::string& key,
                                 const std::string& raw) {
  std::string v = lowered(raw);
  RaceCheckSetting out;
  if (const std::size_t colon = v.find(':'); colon != std::string::npos) {
    if (v.substr(colon + 1) != "pruned") {
      throw EnvError(key + "=" + raw +
                     " suffix must be ':pruned' (static proven-safe pruning)");
    }
    out.pruned = true;
    v = v.substr(0, colon);
  }
  if (v == "off") {
    if (out.pruned) {
      throw EnvError(key + "=" + raw + " cannot combine 'off' with ':pruned'");
    }
    out.mode = RaceCheckMode::Off;
  } else if (v == "report") {
    out.mode = RaceCheckMode::Report;
  } else if (v == "abort") {
    out.mode = RaceCheckMode::Abort;
  } else {
    throw EnvError(key + "=" + raw + " must be 'off', 'report', or 'abort'" +
                   " (optionally with a ':pruned' suffix)");
  }
  return out;
}

CheckMode check_mode(const std::string& key, const std::string& raw) {
  const std::string v = lowered(raw);
  if (v == "off") {
    return CheckMode::Off;
  }
  if (v == "report") {
    return CheckMode::Report;
  }
  if (v == "abort") {
    return CheckMode::Abort;
  }
  throw EnvError(key + "=" + raw + " must be 'off', 'report', or 'abort'");
}

fabric::FabricMode fabric_mode(const std::string& key, const std::string& raw) {
  const std::string v = lowered(raw);
  if (v == "off") {
    return fabric::FabricMode::Off;
  }
  if (v == "xgmi") {
    return fabric::FabricMode::Xgmi;
  }
  if (v == "uniform") {
    return fabric::FabricMode::Uniform;
  }
  throw EnvError(key + "=" + raw + " must be 'off', 'xgmi', or 'uniform'");
}

PressureMode pressure_mode(const std::string& key, const std::string& raw) {
  const std::string v = lowered(raw);
  if (v == "off") {
    return PressureMode::Off;
  }
  if (v == "watermarks") {
    return PressureMode::Watermarks;
  }
  throw EnvError(key + "=" + raw + " must be 'off' or 'watermarks'");
}

ThpMode thp_mode(const std::string& key, const std::string& raw) {
  if (lowered(raw) == "dynamic") {
    return ThpMode::Dynamic;
  }
  return truthy(key, raw) ? ThpMode::On : ThpMode::Off;
}

AutomigrateConfig automigrate_config(const std::string& key,
                                     const std::string& raw) {
  AutomigrateConfig out;
  // An integer >= 2 is a threshold; 0/1 fall through to the boolean forms
  // so "1" keeps its usual meaning of "on at the default threshold".
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (ec == std::errc{} && ptr == raw.data() + raw.size() && !raw.empty() &&
      value >= 2) {
    out.enabled = true;
    out.threshold = value;
    return out;
  }
  if (ec == std::errc{} && ptr == raw.data() + raw.size() && !raw.empty() &&
      value < 0) {
    throw EnvError(key + "=" + raw +
                   " must be a boolean or a threshold integer >= 2");
  }
  try {
    out.enabled = truthy(key, raw);
  } catch (const EnvError&) {
    throw EnvError(key + "=" + raw +
                   " must be a boolean or a threshold integer >= 2");
  }
  return out;
}

int socket_count(const std::string& key, const std::string& raw) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  if (ec != std::errc{} || ptr != raw.data() + raw.size() || raw.empty()) {
    throw EnvError(key + "=" + raw + " must be a positive integer");
  }
  if (value <= 0) {
    throw EnvError(key + "=" + raw + " must be a positive integer");
  }
  return value;
}

}  // namespace

WatchdogConfig parse_watchdog(const std::string& raw) {
  const std::string err_prefix = "OMPX_APU_WATCHDOG=" + raw + ": ";
  std::string_view text{raw};
  std::string_view budget = text;
  std::string_view mode;
  if (const std::size_t colon = text.find(':');
      colon != std::string_view::npos) {
    budget = text.substr(0, colon);
    mode = text.substr(colon + 1);
  }

  std::int64_t scale = 1;  // default unit: nanoseconds
  if (budget.size() >= 2) {
    const std::string_view suffix = budget.substr(budget.size() - 2);
    if (suffix == "ns") {
      budget.remove_suffix(2);
    } else if (suffix == "us") {
      scale = 1000;
      budget.remove_suffix(2);
    } else if (suffix == "ms") {
      scale = 1000 * 1000;
      budget.remove_suffix(2);
    }
  }
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(budget.data(), budget.data() + budget.size(), value);
  if (ec != std::errc{} || ptr != budget.data() + budget.size() ||
      budget.empty()) {
    throw EnvError(err_prefix + "budget must be an integer with an optional "
                                "ns/us/ms suffix");
  }
  if (value < 0) {
    throw EnvError(err_prefix + "budget must be non-negative");
  }

  WatchdogConfig out;
  out.budget = sim::Duration::nanoseconds(value * scale);
  if (!mode.empty()) {
    if (mode == "abort") {
      out.recover = false;
    } else if (mode == "recover") {
      out.recover = true;
    } else {
      throw EnvError(err_prefix + "mode must be 'abort' or 'recover'");
    }
  }
  return out;
}

ServiceConfig parse_service(const std::string& raw) {
  const std::string err_prefix = "OMPX_APU_SERVICE=" + raw + ": ";
  const std::size_t colon = raw.find(':');
  if (colon == std::string::npos) {
    throw EnvError(err_prefix +
                   "expected '<tenants>:<policy>' (the policy part is "
                   "mandatory: off, admit, fair, or full)");
  }
  const std::string tenants = raw.substr(0, colon);
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(tenants.data(), tenants.data() + tenants.size(), value);
  if (ec != std::errc{} || ptr != tenants.data() + tenants.size() ||
      tenants.empty() || value <= 0) {
    throw EnvError(err_prefix + "tenant count must be a positive integer");
  }

  ServiceConfig out;
  out.tenants = value;
  const std::string policy = lowered(raw.substr(colon + 1));
  if (policy == "off") {
    out.policy = ServicePolicy::Off;
  } else if (policy == "admit") {
    out.policy = ServicePolicy::Admit;
  } else if (policy == "fair") {
    out.policy = ServicePolicy::Fair;
  } else if (policy == "full") {
    out.policy = ServicePolicy::Full;
  } else {
    throw EnvError(err_prefix +
                   "policy must be 'off', 'admit', 'fair', or 'full'");
  }
  return out;
}

RunEnvironment RunEnvironment::from_env(
    const std::map<std::string, std::string>& env) {
  RunEnvironment out;
  if (auto it = env.find("HSA_XNACK"); it != env.end()) {
    out.hsa_xnack = truthy(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_MAPS"); it != env.end()) {
    out.ompx_apu_maps = apu_maps_mode(it->first, it->second);
  }
  if (auto it = env.find("OMPX_EAGER_ZERO_COPY_MAPS"); it != env.end()) {
    out.ompx_eager_maps = truthy(it->first, it->second);
  }
  if (auto it = env.find("THP"); it != env.end()) {
    out.thp = thp_mode(it->first, it->second);
    out.transparent_huge_pages = out.thp != ThpMode::Off;
  }
  if (auto it = env.find("OMPX_APU_FAULTS"); it != env.end()) {
    try {
      (void)fault::parse_spec(it->second);
    } catch (const fault::FaultSpecError& e) {
      throw EnvError(std::string{"OMPX_APU_FAULTS: "} + e.what());
    }
    out.ompx_apu_faults = it->second;
  }
  if (auto it = env.find("OMPX_APU_WATCHDOG"); it != env.end()) {
    out.watchdog = parse_watchdog(it->second);
  }
  if (auto it = env.find("OMPX_APU_RACE_CHECK"); it != env.end()) {
    const RaceCheckSetting rc = race_check_mode(it->first, it->second);
    out.race_check = rc.mode;
    out.race_check_pruned = rc.pruned;
  }
  if (auto it = env.find("OMPX_APU_CHECK"); it != env.end()) {
    out.ompx_apu_check = check_mode(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_SOCKETS"); it != env.end()) {
    out.ompx_apu_sockets = socket_count(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_FABRIC"); it != env.end()) {
    out.ompx_apu_fabric = fabric_mode(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_PRESSURE"); it != env.end()) {
    out.ompx_apu_pressure = pressure_mode(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_AUTOMIGRATE"); it != env.end()) {
    out.ompx_apu_automigrate = automigrate_config(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_SERVICE"); it != env.end()) {
    out.ompx_apu_service = parse_service(it->second);
  }
  return out;
}

std::string RunEnvironment::to_string() const {
  auto flag = [](bool b) { return b ? "1" : "0"; };
  std::string s;
  s += "HSA_XNACK=";
  s += flag(hsa_xnack);
  s += " OMPX_APU_MAPS=";
  s += apu::to_string(ompx_apu_maps);
  s += " OMPX_EAGER_ZERO_COPY_MAPS=";
  s += flag(ompx_eager_maps);
  s += " THP=";
  s += apu::to_string(thp);
  if (!ompx_apu_faults.empty()) {
    s += " OMPX_APU_FAULTS=";
    s += ompx_apu_faults;
  }
  if (watchdog.enabled()) {
    s += " OMPX_APU_WATCHDOG=";
    s += std::to_string(watchdog.budget.ns());
    s += watchdog.recover ? ":recover" : ":abort";
  }
  if (race_check != RaceCheckMode::Off) {
    s += " OMPX_APU_RACE_CHECK=";
    s += apu::to_string(race_check);
    if (race_check_pruned) {
      s += ":pruned";
    }
  }
  if (ompx_apu_check != CheckMode::Off) {
    s += " OMPX_APU_CHECK=";
    s += apu::to_string(ompx_apu_check);
  }
  if (ompx_apu_sockets > 0) {
    s += " OMPX_APU_SOCKETS=";
    s += std::to_string(ompx_apu_sockets);
  }
  if (ompx_apu_fabric != fabric::FabricMode::Off) {
    s += " OMPX_APU_FABRIC=";
    s += fabric::to_string(ompx_apu_fabric);
  }
  if (ompx_apu_pressure != PressureMode::Off) {
    s += " OMPX_APU_PRESSURE=";
    s += apu::to_string(ompx_apu_pressure);
  }
  if (ompx_apu_automigrate.enabled) {
    s += " OMPX_APU_AUTOMIGRATE=";
    s += std::to_string(ompx_apu_automigrate.threshold);
  }
  if (ompx_apu_service.enabled()) {
    s += " OMPX_APU_SERVICE=";
    s += std::to_string(ompx_apu_service.tenants);
    s += ':';
    s += apu::to_string(ompx_apu_service.policy);
  }
  return s;
}

}  // namespace zc::apu
