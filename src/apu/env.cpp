#include "zc/apu/env.hpp"

#include <algorithm>
#include <cctype>

#include "zc/fault/spec.hpp"

namespace zc::apu {

namespace {

std::string lowered(std::string v) {
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return v;
}

bool truthy(const std::string& key, const std::string& raw) {
  const std::string v = lowered(raw);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  throw EnvError(key + "=" + raw + " is not a recognized boolean value");
}

ApuMapsMode apu_maps_mode(const std::string& key, const std::string& raw) {
  if (lowered(raw) == "adaptive") {
    return ApuMapsMode::Adaptive;
  }
  return truthy(key, raw) ? ApuMapsMode::On : ApuMapsMode::Off;
}

}  // namespace

RunEnvironment RunEnvironment::from_env(
    const std::map<std::string, std::string>& env) {
  RunEnvironment out;
  if (auto it = env.find("HSA_XNACK"); it != env.end()) {
    out.hsa_xnack = truthy(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_MAPS"); it != env.end()) {
    out.ompx_apu_maps = apu_maps_mode(it->first, it->second);
  }
  if (auto it = env.find("OMPX_EAGER_ZERO_COPY_MAPS"); it != env.end()) {
    out.ompx_eager_maps = truthy(it->first, it->second);
  }
  if (auto it = env.find("THP"); it != env.end()) {
    out.transparent_huge_pages = truthy(it->first, it->second);
  }
  if (auto it = env.find("OMPX_APU_FAULTS"); it != env.end()) {
    try {
      (void)fault::parse_spec(it->second);
    } catch (const fault::FaultSpecError& e) {
      throw EnvError(std::string{"OMPX_APU_FAULTS: "} + e.what());
    }
    out.ompx_apu_faults = it->second;
  }
  return out;
}

std::string RunEnvironment::to_string() const {
  auto flag = [](bool b) { return b ? "1" : "0"; };
  std::string s;
  s += "HSA_XNACK=";
  s += flag(hsa_xnack);
  s += " OMPX_APU_MAPS=";
  s += apu::to_string(ompx_apu_maps);
  s += " OMPX_EAGER_ZERO_COPY_MAPS=";
  s += flag(ompx_eager_maps);
  s += " THP=";
  s += flag(transparent_huge_pages);
  if (!ompx_apu_faults.empty()) {
    s += " OMPX_APU_FAULTS=";
    s += ompx_apu_faults;
  }
  return s;
}

}  // namespace zc::apu
