#include "zc/apu/machine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace zc::apu {

CostParams mi300a_costs() { return CostParams{}; }

CostParams discrete_gpu_costs() {
  CostParams c;
  // Host<->device copies cross the PCIe-style link instead of staying in
  // one HBM storage; everything else keeps the same order of magnitude.
  c.copy_bandwidth_bytes_per_s = c.pcie_bandwidth_bytes_per_s;
  return c;
}

namespace {

/// Baseline noise drops the outlier mechanism; only syscall paths keep it.
sim::JitterParams without_outliers(sim::JitterParams p) {
  p.outlier_prob = 0.0;
  return p;
}

/// The fabric's link parameters come from the cost model (CostParams is
/// the single home of every modeled constant); the mode from the
/// environment.
fabric::FabricConfig fabric_config_for(const Machine::Config& c) {
  fabric::FabricConfig f;
  f.mode = c.env.ompx_apu_fabric;
  f.wide_bandwidth_bytes_per_s = c.costs.xgmi_wide_bandwidth_bytes_per_s;
  f.narrow_bandwidth_bytes_per_s = c.costs.xgmi_narrow_bandwidth_bytes_per_s;
  f.link_latency = c.costs.xgmi_link_latency;
  return f;
}

}  // namespace

Machine::Config Machine::normalized(Config config) {
  if (config.env.ompx_apu_sockets > 0) {
    config.topology.sockets = config.env.ompx_apu_sockets;
  }
  return config;
}

Machine::Machine(Config config)
    : config_{normalized(std::move(config))},
      faults_{fault::parse_spec(config_.env.ompx_apu_faults),
              config_.seed ^ 0xfa0171edULL},
      jitter_{without_outliers(config_.jitter), config_.seed},
      syscall_jitter_{config_.jitter, config_.seed ^ 0x5ca1ab1eULL},
      runtime_lock_{"runtime-lock", 1},
      fabric_{config_.topology.sockets > 0 ? config_.topology.sockets : 1,
              fabric_config_for(config_)} {
  if (config_.topology.sockets <= 0) {
    throw std::invalid_argument("Machine: sockets must be positive");
  }
  for (int s = 0; s < config_.topology.sockets; ++s) {
    const std::string suffix = "-s" + std::to_string(s);
    gpu_.emplace_back("gpu-kernel-slots" + suffix,
                      config_.topology.gpu_kernel_slots);
    sdma_.emplace_back("sdma-engines" + suffix, config_.topology.sdma_engines);
    driver_.emplace_back("driver-lock" + suffix, 1);
  }
}

sim::ResourceTimeline& Machine::per_socket(
    std::vector<sim::ResourceTimeline>& v, int socket) {
  if (socket < 0 || socket >= static_cast<int>(v.size())) {
    throw std::out_of_range("Machine: socket " + std::to_string(socket) +
                            " out of range (have " +
                            std::to_string(v.size()) + ")");
  }
  return v[static_cast<std::size_t>(socket)];
}

Machine Machine::mi300a(RunEnvironment env, sim::JitterParams jitter,
                        std::uint64_t seed) {
  Config cfg;
  cfg.kind = MachineKind::ApuMi300a;
  cfg.costs = mi300a_costs();
  cfg.env = env;
  cfg.jitter = jitter;
  cfg.seed = seed;
  return Machine{std::move(cfg)};
}

Machine Machine::discrete_gpu(RunEnvironment env, sim::JitterParams jitter,
                              std::uint64_t seed) {
  Config cfg;
  cfg.kind = MachineKind::DiscreteGpu;
  cfg.costs = discrete_gpu_costs();
  cfg.env = env;
  cfg.jitter = jitter;
  cfg.seed = seed;
  return Machine{std::move(cfg)};
}

sim::Duration Machine::copy_duration(std::uint64_t bytes) const {
  const double secs =
      static_cast<double>(bytes) / config_.costs.copy_bandwidth_bytes_per_s;
  return max(config_.costs.copy_min, sim::Duration::from_seconds(secs));
}

sim::Duration Machine::fault_service_duration(bool cpu_resident) const {
  if (cpu_resident) {
    return config_.costs.xnack_fault_resident;
  }
  return config_.costs.xnack_fault_resident + config_.costs.page_materialize;
}

}  // namespace zc::apu
