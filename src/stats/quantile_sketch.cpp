#include "zc/stats/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace zc::stats {

QuantileSketch::QuantileSketch()
    : bins_(static_cast<std::size_t>(kExpCount) * kSubBuckets, 0) {}

int QuantileSketch::bucket_of(double value) {
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // mantissa in [0.5, 1)
  if (exp < kMinExp + 1) {
    return 0;
  }
  if (exp > kMaxExp + 1) {
    return kExpCount * kSubBuckets - 1;
  }
  // frexp's exponent is one above the bucket exponent: value = m * 2^exp
  // with m in [0.5, 1), i.e. value in [2^(exp-1), 2^exp).
  const int sub = std::clamp(
      static_cast<int>((mantissa - 0.5) * (2.0 * kSubBuckets)), 0,
      kSubBuckets - 1);
  return (exp - 1 - kMinExp) * kSubBuckets + sub;
}

double QuantileSketch::representative(int bucket) {
  const int exp = kMinExp + bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const double lo =
      std::ldexp(0.5 + sub / (2.0 * kSubBuckets), exp + 1);
  const double hi =
      std::ldexp(0.5 + (sub + 1) / (2.0 * kSubBuckets), exp + 1);
  return 0.5 * (lo + hi);
}

void QuantileSketch::record(double value) {
  if (!std::isfinite(value) || value < 0.0) {
    throw std::invalid_argument(
        "QuantileSketch::record requires finite non-negative samples");
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
  if (value == 0.0) {
    ++zero_count_;
    return;
  }
  ++bins_[static_cast<std::size_t>(bucket_of(value))];
}

double QuantileSketch::quantile(double p) const {
  if (count_ == 0) {
    throw std::invalid_argument("QuantileSketch::quantile on empty sketch");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("QuantileSketch::quantile p outside [0, 1]");
  }
  if (p <= 0.0) {
    return min_;
  }
  if (p >= 1.0) {
    return max_;
  }
  // 1-based rank of the order statistic `SortedSamples` would anchor its
  // interpolation at.
  const auto target = static_cast<std::uint64_t>(
                          p * static_cast<double>(count_ - 1)) +
                      1;
  std::uint64_t cumulative = zero_count_;
  if (cumulative >= target) {
    return 0.0;
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cumulative += bins_[i];
    if (cumulative >= target) {
      return std::clamp(representative(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;  // unreachable: cumulative counts always reach count_
}

double QuantileSketch::min() const {
  if (count_ == 0) {
    throw std::invalid_argument("QuantileSketch::min on empty sketch");
  }
  return min_;
}

double QuantileSketch::max() const {
  if (count_ == 0) {
    throw std::invalid_argument("QuantileSketch::max on empty sketch");
  }
  return max_;
}

double QuantileSketch::mean() const {
  if (count_ == 0) {
    throw std::invalid_argument("QuantileSketch::mean on empty sketch");
  }
  return sum_ / static_cast<double>(count_);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
}

}  // namespace zc::stats
