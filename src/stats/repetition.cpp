#include "zc/stats/repetition.hpp"

#include <stdexcept>

namespace zc::stats {

RepeatedRuns repeat(
    int reps, std::uint64_t base_seed,
    const std::function<sim::Duration(std::uint64_t seed)>& run) {
  if (reps <= 0) {
    throw std::invalid_argument("repeat: reps must be positive");
  }
  RepeatedRuns out;
  out.times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    out.times.push_back(run(base_seed + static_cast<std::uint64_t>(r) + 1));
  }
  return out;
}

double ratio_of_medians(const RepeatedRuns& copy, const RepeatedRuns& config) {
  return copy.median_time() / config.median_time();
}

}  // namespace zc::stats
