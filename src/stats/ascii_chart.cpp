#include "zc/stats/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace zc::stats {

AsciiChart::AsciiChart(std::string title, std::vector<std::string> x_labels)
    : title_{std::move(title)}, x_labels_{std::move(x_labels)} {
  if (x_labels_.empty()) {
    throw std::invalid_argument("AsciiChart: no x labels");
  }
}

void AsciiChart::add_series(std::string name, std::vector<double> ys) {
  if (ys.size() != x_labels_.size()) {
    throw std::invalid_argument("AsciiChart: series '" + name +
                                "' arity mismatch");
  }
  series_.push_back(Series{std::move(name), std::move(ys)});
}

void AsciiChart::print(std::ostream& os, int height) const {
  if (series_.empty() || height < 2) {
    throw std::invalid_argument("AsciiChart::print: nothing to draw");
  }
  double lo = series_[0].ys[0];
  double hi = lo;
  for (const Series& s : series_) {
    for (const double y : s.ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  if (hi == lo) {
    hi = lo + 1.0;
  }
  // Pad the range slightly so extremes do not sit on the border rows.
  const double pad = 0.05 * (hi - lo);
  lo -= pad;
  hi += pad;

  const int col_width = 7;
  const int plot_cols = static_cast<int>(x_labels_.size()) * col_width;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(plot_cols), ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const Series& s = series_[si];
    for (std::size_t xi = 0; xi < s.ys.size(); ++xi) {
      const double frac = (s.ys[xi] - lo) / (hi - lo);
      int row = height - 1 -
                static_cast<int>(std::lround(frac * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      const int col = static_cast<int>(xi) * col_width + col_width / 2;
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          static_cast<char>('0' + (si % 10));
    }
  }

  os << title_ << '\n';
  for (int r = 0; r < height; ++r) {
    const double y = hi - (hi - lo) * r / (height - 1);
    char label[16];
    std::snprintf(label, sizeof label, "%6.2f", y);
    os << label << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(8, ' ') << std::string(static_cast<std::size_t>(plot_cols), '-')
     << '\n';
  os << std::string(8, ' ');
  for (const std::string& xl : x_labels_) {
    char cell[16];
    std::snprintf(cell, sizeof cell, "%*s", col_width,
                  xl.substr(0, static_cast<std::size_t>(col_width) - 1).c_str());
    os << cell;
  }
  os << '\n';
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  [" << si % 10 << "] " << series_[si].name << '\n';
  }
}

}  // namespace zc::stats
