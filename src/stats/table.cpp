#include "zc/stats/table.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace zc::stats {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: empty header");
  }
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity " +
                                std::to_string(row.size()) +
                                " != header arity " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  const std::size_t first = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) {
      out += ',';
    }
    out += raw[i];
  }
  return out;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TextTable::print_csv(std::ostream& os) const {
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  csv_row(header_);
  for (const auto& row : rows_) {
    csv_row(row);
  }
}

}  // namespace zc::stats
