#include "zc/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace zc::stats {

double median(std::vector<double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("median: empty sample set");
  }
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  const double hi = samples[mid];
  if (samples.size() % 2 == 1) {
    return hi;
  }
  const double lo =
      *std::max_element(samples.begin(), samples.begin() + mid);
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("percentile: p outside [0, 1]");
  }
  std::sort(samples.begin(), samples.end());
  const double pos = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) {
    return samples.back();
  }
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

sim::Duration median(const std::vector<sim::Duration>& samples) {
  std::vector<double> secs;
  secs.reserve(samples.size());
  for (const sim::Duration d : samples) {
    secs.push_back(d.sec());
  }
  return sim::Duration::from_seconds(median(std::move(secs)));
}

Summary summarize(const std::vector<double>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("summarize: empty sample set");
  }
  Summary s;
  s.n = samples.size();
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (const double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  double ss = 0.0;
  for (const double v : samples) {
    ss += (v - s.mean) * (v - s.mean);
  }
  s.stddev = s.n > 1 ? std::sqrt(ss / static_cast<double>(s.n - 1)) : 0.0;
  s.median = median(samples);
  return s;
}

Summary summarize(const std::vector<sim::Duration>& samples) {
  std::vector<double> secs;
  secs.reserve(samples.size());
  for (const sim::Duration d : samples) {
    secs.push_back(d.sec());
  }
  return summarize(secs);
}

}  // namespace zc::stats
