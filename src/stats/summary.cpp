#include "zc/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace zc::stats {

double median(std::vector<double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("median: empty sample set");
  }
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  const double hi = samples[mid];
  if (samples.size() % 2 == 1) {
    return hi;
  }
  const double lo =
      *std::max_element(samples.begin(), samples.begin() + mid);
  return 0.5 * (lo + hi);
}

namespace {

/// Shared interpolation rule: `sorted` need only have its `lo`-th order
/// statistic in place and the minimum of the tail right after it.
double interpolate_sorted(const std::vector<double>& sorted, double p) {
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void check_percentile_args(const std::vector<double>& samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("percentile: p outside [0, 1]");
  }
}

}  // namespace

double percentile(const std::vector<double>& samples, double p) {
  check_percentile_args(samples, p);
  std::vector<double> work = samples;  // one copy, selected not sorted
  const double pos = p * static_cast<double>(work.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  std::nth_element(work.begin(),
                   work.begin() + static_cast<std::ptrdiff_t>(lo), work.end());
  if (lo + 1 < work.size()) {
    // The interpolation partner is the minimum of the tail nth_element left
    // to the right of position lo.
    const auto tail = work.begin() + static_cast<std::ptrdiff_t>(lo) + 1;
    std::iter_swap(tail, std::min_element(tail, work.end()));
  }
  return interpolate_sorted(work, p);
}

SortedSamples::SortedSamples(std::vector<double> samples)
    : sorted_{std::move(samples)} {
  if (sorted_.empty()) {
    throw std::invalid_argument("SortedSamples: empty sample set");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double SortedSamples::quantile(double p) const {
  check_percentile_args(sorted_, p);
  return interpolate_sorted(sorted_, p);
}

sim::Duration median(const std::vector<sim::Duration>& samples) {
  std::vector<double> secs;
  secs.reserve(samples.size());
  for (const sim::Duration d : samples) {
    secs.push_back(d.sec());
  }
  return sim::Duration::from_seconds(median(std::move(secs)));
}

Summary summarize(const std::vector<double>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("summarize: empty sample set");
  }
  Summary s;
  s.n = samples.size();
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (const double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  double ss = 0.0;
  for (const double v : samples) {
    ss += (v - s.mean) * (v - s.mean);
  }
  s.stddev = s.n > 1 ? std::sqrt(ss / static_cast<double>(s.n - 1)) : 0.0;
  s.median = median(samples);
  return s;
}

Summary summarize(const std::vector<sim::Duration>& samples) {
  std::vector<double> secs;
  secs.reserve(samples.size());
  for (const sim::Duration d : samples) {
    secs.push_back(d.sec());
  }
  return summarize(secs);
}

}  // namespace zc::stats
