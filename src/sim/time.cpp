#include "zc/sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace zc::sim {

Duration Duration::from_us(double us) {
  return Duration::nanoseconds(static_cast<std::int64_t>(std::llround(us * 1e3)));
}

Duration Duration::from_seconds(double s) {
  return Duration::nanoseconds(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

Duration operator*(Duration a, double k) {
  return Duration::nanoseconds(
      static_cast<std::int64_t>(std::llround(static_cast<double>(a.ns()) * k)));
}

namespace {

std::string format_ns(std::int64_t v) {
  char buf[64];
  const double av = std::abs(static_cast<double>(v));
  if (av < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(v));
  } else if (av < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gus", static_cast<double>(v) / 1e3);
  } else if (av < 1e9) {
    std::snprintf(buf, sizeof buf, "%.4gms", static_cast<double>(v) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.5gs", static_cast<double>(v) / 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_ns(ns_); }

std::string TimePoint::to_string() const { return format_ns(ns_); }

}  // namespace zc::sim
