#include "zc/sim/timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace zc::sim {

ResourceTimeline::ResourceTimeline(std::string name, int servers)
    : name_{std::move(name)} {
  if (servers <= 0) {
    throw std::invalid_argument("ResourceTimeline '" + name_ +
                                "': servers must be positive");
  }
  free_at_.assign(static_cast<std::size_t>(servers), TimePoint::zero());
}

Interval ResourceTimeline::reserve(TimePoint ready, Duration dur) {
  if (dur.is_negative()) {
    throw std::invalid_argument("ResourceTimeline '" + name_ +
                                "': negative duration");
  }
  last_ready_ = max(last_ready_, ready);

  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const TimePoint start = max(ready, *it);
  const TimePoint end = start + dur;
  *it = end;

  ++reservations_;
  busy_ += dur;
  queued_ += start - ready;
  return Interval{start, end};
}

TimePoint ResourceTimeline::available_at() const {
  return *std::min_element(free_at_.begin(), free_at_.end());
}

TimePoint ResourceTimeline::drained_at() const {
  return *std::max_element(free_at_.begin(), free_at_.end());
}

void ResourceTimeline::reset() {
  std::fill(free_at_.begin(), free_at_.end(), TimePoint::zero());
  reservations_ = 0;
  busy_ = Duration::zero();
  queued_ = Duration::zero();
  last_ready_ = TimePoint::zero();
}

}  // namespace zc::sim
