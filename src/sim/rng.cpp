#include "zc/sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace zc::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro state must not be all-zero; splitmix64 never produces four zero
  // outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Modulo bias is negligible for the small ranges used in the simulator,
  // but use Lemire's multiply-shift reduction anyway.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal_unit_mean(double sigma) {
  if (sigma <= 0.0) {
    return 1.0;
  }
  return std::exp(sigma * normal() - 0.5 * sigma * sigma);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace zc::sim
