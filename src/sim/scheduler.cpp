#include "zc/sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace zc::sim {

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

VirtualThread& Scheduler::spawn(std::string name, std::function<void()> body) {
  const int id = static_cast<int>(threads_.size());
  auto vt = std::unique_ptr<VirtualThread>(
      new VirtualThread{std::move(name), id});
  VirtualThread* const raw = vt.get();
  if (running_ != nullptr) {
    raw->clock_ = running_->clock_;  // child inherits the spawner's time
  }
  raw->fiber_ = std::make_unique<Fiber>([this, raw, fn = std::move(body)] {
    fn();
    if (!raw->held_.empty()) {
      throw LockDisciplineError(
          "thread '" + raw->name_ + "' finished while holding " +
          std::to_string(raw->held_.size()) + " lock(s)");
    }
    if (hooks_ != nullptr) {
      hooks_->on_finish(raw->id_);
    }
    raw->state_ = VirtualThread::State::Finished;
    horizon_ = max(horizon_, raw->clock_);
  });
  threads_.push_back(std::move(vt));
  if (hooks_ != nullptr) {
    hooks_->on_spawn(running_ != nullptr ? running_->id_ : -1, id);
  }
  return *raw;
}

VirtualThread* Scheduler::pick_next() {
  if (stress_) {
    // Stress mode: the min-clock policy still decides *which clocks* may
    // run (so the schedule stays a valid time-ordered interleaving), but
    // ties are broken uniformly at random from the seeded stream instead
    // of by spawn order.
    std::vector<VirtualThread*> ties;
    for (const auto& t : threads_) {
      if (t->state_ != VirtualThread::State::Runnable) {
        continue;
      }
      if (ties.empty() || t->clock_ < ties.front()->clock_) {
        ties.clear();
        ties.push_back(t.get());
      } else if (t->clock_ == ties.front()->clock_) {
        ties.push_back(t.get());
      }
    }
    if (ties.empty()) {
      return nullptr;
    }
    return ties[stress_rng_.uniform_index(ties.size())];
  }
  // Minimum clock wins; on ties a thread that called reschedule() lets
  // non-deprioritized peers go first, then spawn order breaks what remains.
  VirtualThread* best = nullptr;
  for (const auto& t : threads_) {
    if (t->state_ != VirtualThread::State::Runnable) {
      continue;
    }
    if (best == nullptr || t->clock_ < best->clock_ ||
        (t->clock_ == best->clock_ && best->deprioritized_ &&
         !t->deprioritized_)) {
      best = t.get();
    }
  }
  return best;
}

void Scheduler::enable_stress(std::uint64_t seed) {
  stress_ = true;
  stress_rng_ = Rng{seed};
}

void Scheduler::stress_point() {
  if (!stress_ || running_ == nullptr) {
    return;
  }
  // Half the time, hand the CPU back to the scheduler so an equal-clock
  // peer may be drawn; the other half, proceed — both orders are explored
  // across seeds.
  if (stress_rng_.bernoulli(0.5)) {
    Fiber::yield();
  }
}

bool Scheduler::fire_due_timers() {
  // A timer may only fire when no runnable thread has a strictly smaller
  // clock — otherwise that thread must run first to keep the schedule
  // time-ordered. Wake every timed-blocked thread sharing the earliest due
  // deadline; ties among the woken threads are then broken by the normal
  // pick_next policy.
  bool any_runnable = false;
  TimePoint min_run;
  bool any_timer = false;
  TimePoint min_wake;
  for (const auto& t : threads_) {
    if (t->state_ == VirtualThread::State::Runnable &&
        (!any_runnable || t->clock_ < min_run)) {
      min_run = t->clock_;
      any_runnable = true;
    }
    if (t->state_ == VirtualThread::State::Blocked && t->wake_at_ &&
        (!any_timer || *t->wake_at_ < min_wake)) {
      min_wake = *t->wake_at_;
      any_timer = true;
    }
  }
  if (!any_timer || (any_runnable && min_run < min_wake)) {
    return false;
  }
  bool fired = false;
  for (const auto& t : threads_) {
    if (t->state_ != VirtualThread::State::Blocked || !t->wake_at_ ||
        *t->wake_at_ != min_wake) {
      continue;
    }
    t->state_ = VirtualThread::State::Runnable;
    t->timed_out_ = true;
    t->clock_ = max(t->clock_, min_wake);
    t->wake_at_.reset();
    if (t->waiting_in_ != nullptr) {
      std::erase(t->waiting_in_->waiters_, t.get());
      t->waiting_in_ = nullptr;
    }
    t->wait_what_.clear();
    horizon_ = max(horizon_, t->clock_);
    fired = true;
  }
  return fired;
}

void Scheduler::run() {
  if (in_run_) {
    throw SimError("Scheduler::run is not reentrant");
  }
  in_run_ = true;
  while (true) {
    fire_due_timers();
    VirtualThread* const next = pick_next();
    if (next == nullptr) {
      bool any_blocked = false;
      std::string blocked;
      for (const auto& t : threads_) {
        if (t->state_ == VirtualThread::State::Blocked) {
          any_blocked = true;
          if (!blocked.empty()) {
            blocked += "; ";
          }
          blocked += "'" + t->name_ + "' on " +
                     (t->wait_what_.empty() ? std::string{"<unknown>"}
                                            : t->wait_what_);
        }
      }
      in_run_ = false;
      if (any_blocked) {
        throw SimError("simulation deadlock: blocked threads remain (" +
                       blocked + ")");
      }
      return;  // all finished
    }
    running_ = next;
    next->deprioritized_ = false;
    try {
      next->fiber_->resume();
    } catch (...) {
      running_ = nullptr;
      in_run_ = false;
      throw;
    }
    running_ = nullptr;
  }
}

VirtualThread& Scheduler::current() {
  if (running_ == nullptr) {
    throw SimError("no virtual thread is running");
  }
  return *running_;
}

const VirtualThread& Scheduler::current() const {
  if (running_ == nullptr) {
    throw SimError("no virtual thread is running");
  }
  return *running_;
}

TimePoint Scheduler::now() const { return current().clock_; }

void Scheduler::advance(Duration d) {
  if (d.is_negative()) {
    throw SimError("Scheduler::advance: negative duration");
  }
  VirtualThread& self = current();
  self.clock_ += d;
  horizon_ = max(horizon_, self.clock_);
  maybe_yield();
}

void Scheduler::advance_to(TimePoint t) {
  VirtualThread& self = current();
  if (t > self.clock_) {
    self.clock_ = t;
    horizon_ = max(horizon_, self.clock_);
  }
  maybe_yield();
}

void Scheduler::sleep_for(Duration d) {
  if (d.is_negative()) {
    throw SimError("Scheduler::sleep_for: negative duration");
  }
  VirtualThread& self = current();
  if (d.is_zero()) {
    maybe_yield();
    return;
  }
  self.wake_at_ = self.clock_ + d;
  self.wait_what_ = "sleep_for";
  block_current();
  self.timed_out_ = false;  // the deadline firing *is* the normal wakeup
}

void Scheduler::reschedule() {
  VirtualThread& self = current();
  self.deprioritized_ = true;
  Fiber::yield();
}

void Scheduler::maybe_yield() {
  // Keep running while we are still (one of) the minimum-clock runnable
  // threads; the spawn-order tie break means an equal-clock thread with a
  // smaller id must get the CPU first. Under stress, any equal-clock peer
  // is a coin-flip preemption opportunity instead.
  VirtualThread& self = current();
  bool tie = false;
  for (const auto& t : threads_) {
    if (t.get() == &self) {
      continue;
    }
    // A timed-blocked thread whose deadline is due must be woken by the
    // run loop before we may proceed past it in time.
    if (t->state_ == VirtualThread::State::Blocked && t->wake_at_ &&
        *t->wake_at_ <= self.clock_) {
      Fiber::yield();
      return;
    }
    if (t->state_ != VirtualThread::State::Runnable) {
      continue;
    }
    if (t->clock_ < self.clock_) {
      Fiber::yield();
      return;
    }
    if (t->clock_ == self.clock_) {
      if (stress_) {
        tie = true;
      } else if (t->id_ < self.id_ && !t->deprioritized_) {
        Fiber::yield();
        return;
      }
    }
  }
  if (tie && stress_rng_.bernoulli(0.5)) {
    Fiber::yield();
  }
}

void Scheduler::block_current() {
  VirtualThread& self = current();
  self.state_ = VirtualThread::State::Blocked;
  Fiber::yield();
}

void Scheduler::wake(VirtualThread& t, TimePoint at_least) {
  if (t.state_ != VirtualThread::State::Blocked) {
    throw SimError("Scheduler::wake: thread '" + t.name_ + "' is not blocked");
  }
  t.state_ = VirtualThread::State::Runnable;
  t.clock_ = max(t.clock_, at_least);
  // Signaled before any armed deadline fired: disarm the timer.
  t.wake_at_.reset();
  t.waiting_in_ = nullptr;
  t.wait_what_.clear();
  horizon_ = max(horizon_, t.clock_);
}

void WaitList::wait(Scheduler& sched, std::string_view what) {
  sched.stress_point();  // wait points are where real schedules diverge
  VirtualThread& self = sched.current();
  self.waiting_in_ = this;
  self.wait_what_ = what;
  waiters_.push_back(&self);
  sched.block_current();
  if (ConcurrencyHooks* h = sched.hooks()) {
    h->on_acquire(this, SyncKind::WaitList);
  }
}

bool WaitList::wait_for(Scheduler& sched, Duration timeout,
                        std::string_view what) {
  sched.stress_point();
  VirtualThread& self = sched.current();
  if (timeout <= Duration::zero()) {
    return false;  // deadline already passed; do not block
  }
  self.waiting_in_ = this;
  self.wait_what_ = what;
  self.wake_at_ = sched.now() + timeout;
  self.timed_out_ = false;
  waiters_.push_back(&self);
  sched.block_current();
  const bool timed_out = self.timed_out_;
  self.timed_out_ = false;
  if (!timed_out) {
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(this, SyncKind::WaitList);
    }
  }
  return !timed_out;
}

void WaitList::notify_all(Scheduler& sched, TimePoint at_least) {
  if (sched.in_thread()) {
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_release(this, SyncKind::WaitList);
    }
  }
  std::vector<VirtualThread*> waiters = std::move(waiters_);
  waiters_.clear();
  for (VirtualThread* w : waiters) {
    sched.wake(*w, at_least);
  }
  // If a woken thread now has a smaller clock than the notifier, hand over.
  if (sched.in_thread()) {
    sched.maybe_yield();
  }
}

}  // namespace zc::sim
