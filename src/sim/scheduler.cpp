#include "zc/sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace zc::sim {

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

VirtualThread& Scheduler::spawn(std::string name, std::function<void()> body) {
  const int id = static_cast<int>(threads_.size());
  auto vt = std::unique_ptr<VirtualThread>(
      new VirtualThread{std::move(name), id});
  VirtualThread* const raw = vt.get();
  if (running_ != nullptr) {
    raw->clock_ = running_->clock_;  // child inherits the spawner's time
  }
  raw->fiber_ = std::make_unique<Fiber>([this, raw, fn = std::move(body)] {
    fn();
    if (!raw->held_.empty()) {
      throw LockDisciplineError(
          "thread '" + raw->name_ + "' finished while holding " +
          std::to_string(raw->held_.size()) + " lock(s)");
    }
    raw->state_ = VirtualThread::State::Finished;
    horizon_ = max(horizon_, raw->clock_);
  });
  threads_.push_back(std::move(vt));
  return *raw;
}

VirtualThread* Scheduler::pick_next() {
  if (stress_) {
    // Stress mode: the min-clock policy still decides *which clocks* may
    // run (so the schedule stays a valid time-ordered interleaving), but
    // ties are broken uniformly at random from the seeded stream instead
    // of by spawn order.
    std::vector<VirtualThread*> ties;
    for (const auto& t : threads_) {
      if (t->state_ != VirtualThread::State::Runnable) {
        continue;
      }
      if (ties.empty() || t->clock_ < ties.front()->clock_) {
        ties.clear();
        ties.push_back(t.get());
      } else if (t->clock_ == ties.front()->clock_) {
        ties.push_back(t.get());
      }
    }
    if (ties.empty()) {
      return nullptr;
    }
    return ties[stress_rng_.uniform_index(ties.size())];
  }
  // Minimum clock wins; on ties a thread that called reschedule() lets
  // non-deprioritized peers go first, then spawn order breaks what remains.
  VirtualThread* best = nullptr;
  for (const auto& t : threads_) {
    if (t->state_ != VirtualThread::State::Runnable) {
      continue;
    }
    if (best == nullptr || t->clock_ < best->clock_ ||
        (t->clock_ == best->clock_ && best->deprioritized_ &&
         !t->deprioritized_)) {
      best = t.get();
    }
  }
  return best;
}

void Scheduler::enable_stress(std::uint64_t seed) {
  stress_ = true;
  stress_rng_ = Rng{seed};
}

void Scheduler::stress_point() {
  if (!stress_ || running_ == nullptr) {
    return;
  }
  // Half the time, hand the CPU back to the scheduler so an equal-clock
  // peer may be drawn; the other half, proceed — both orders are explored
  // across seeds.
  if (stress_rng_.bernoulli(0.5)) {
    Fiber::yield();
  }
}

void Scheduler::run() {
  if (in_run_) {
    throw SimError("Scheduler::run is not reentrant");
  }
  in_run_ = true;
  while (true) {
    VirtualThread* const next = pick_next();
    if (next == nullptr) {
      bool any_blocked = false;
      std::string blocked_names;
      for (const auto& t : threads_) {
        if (t->state_ == VirtualThread::State::Blocked) {
          any_blocked = true;
          if (!blocked_names.empty()) {
            blocked_names += ", ";
          }
          blocked_names += t->name_;
        }
      }
      in_run_ = false;
      if (any_blocked) {
        throw SimError("simulation deadlock: blocked threads remain (" +
                       blocked_names + ")");
      }
      return;  // all finished
    }
    running_ = next;
    next->deprioritized_ = false;
    try {
      next->fiber_->resume();
    } catch (...) {
      running_ = nullptr;
      in_run_ = false;
      throw;
    }
    running_ = nullptr;
  }
}

VirtualThread& Scheduler::current() {
  if (running_ == nullptr) {
    throw SimError("no virtual thread is running");
  }
  return *running_;
}

const VirtualThread& Scheduler::current() const {
  if (running_ == nullptr) {
    throw SimError("no virtual thread is running");
  }
  return *running_;
}

TimePoint Scheduler::now() const { return current().clock_; }

void Scheduler::advance(Duration d) {
  if (d.is_negative()) {
    throw SimError("Scheduler::advance: negative duration");
  }
  VirtualThread& self = current();
  self.clock_ += d;
  horizon_ = max(horizon_, self.clock_);
  maybe_yield();
}

void Scheduler::advance_to(TimePoint t) {
  VirtualThread& self = current();
  if (t > self.clock_) {
    self.clock_ = t;
    horizon_ = max(horizon_, self.clock_);
  }
  maybe_yield();
}

void Scheduler::reschedule() {
  VirtualThread& self = current();
  self.deprioritized_ = true;
  Fiber::yield();
}

void Scheduler::maybe_yield() {
  // Keep running while we are still (one of) the minimum-clock runnable
  // threads; the spawn-order tie break means an equal-clock thread with a
  // smaller id must get the CPU first. Under stress, any equal-clock peer
  // is a coin-flip preemption opportunity instead.
  VirtualThread& self = current();
  bool tie = false;
  for (const auto& t : threads_) {
    if (t.get() == &self || t->state_ != VirtualThread::State::Runnable) {
      continue;
    }
    if (t->clock_ < self.clock_) {
      Fiber::yield();
      return;
    }
    if (t->clock_ == self.clock_) {
      if (stress_) {
        tie = true;
      } else if (t->id_ < self.id_ && !t->deprioritized_) {
        Fiber::yield();
        return;
      }
    }
  }
  if (tie && stress_rng_.bernoulli(0.5)) {
    Fiber::yield();
  }
}

void Scheduler::block_current() {
  VirtualThread& self = current();
  self.state_ = VirtualThread::State::Blocked;
  Fiber::yield();
}

void Scheduler::wake(VirtualThread& t, TimePoint at_least) {
  if (t.state_ != VirtualThread::State::Blocked) {
    throw SimError("Scheduler::wake: thread '" + t.name_ + "' is not blocked");
  }
  t.state_ = VirtualThread::State::Runnable;
  t.clock_ = max(t.clock_, at_least);
  horizon_ = max(horizon_, t.clock_);
}

void WaitList::wait(Scheduler& sched) {
  sched.stress_point();  // wait points are where real schedules diverge
  VirtualThread& self = sched.current();
  waiters_.push_back(&self);
  sched.block_current();
}

void WaitList::notify_all(Scheduler& sched, TimePoint at_least) {
  std::vector<VirtualThread*> waiters = std::move(waiters_);
  waiters_.clear();
  for (VirtualThread* w : waiters) {
    sched.wake(*w, at_least);
  }
  // If a woken thread now has a smaller clock than the notifier, hand over.
  if (sched.in_thread()) {
    sched.maybe_yield();
  }
}

}  // namespace zc::sim
