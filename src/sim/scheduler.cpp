#include "zc/sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace zc::sim {

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

VirtualThread& Scheduler::spawn(std::string name, std::function<void()> body) {
  const int id = static_cast<int>(threads_.size());
  auto vt = std::unique_ptr<VirtualThread>(
      new VirtualThread{std::move(name), id});
  VirtualThread* const raw = vt.get();
  if (running_ != nullptr) {
    raw->clock_ = running_->clock_;  // child inherits the spawner's time
  }
  raw->fiber_ = std::make_unique<Fiber>(
      [this, raw, fn = std::move(body)] {
        fn();
        if (!raw->held_.empty()) {
          throw LockDisciplineError(
              "thread '" + raw->name_ + "' finished while holding " +
              std::to_string(raw->held_.size()) + " lock(s)");
        }
        if (hooks_ != nullptr) {
          hooks_->on_finish(raw->id_);
        }
        raw->state_ = VirtualThread::State::Finished;
        horizon_ = max(horizon_, raw->clock_);
      },
      Fiber::kDefaultStackBytes, &stack_pool_);
  threads_.push_back(std::move(vt));
  push_ready(raw);
  if (hooks_ != nullptr) {
    hooks_->on_spawn(running_ != nullptr ? running_->id_ : -1, id);
  }
  return *raw;
}

// --- ready heap ----------------------------------------------------------
//
// Plain binary min-heap of ReadyEntry (key snapshot + thread pointer)
// ordered by (clock, resched_seq, id). The heap only ever sees push and
// pop-min: a thread enters when it becomes runnable (spawn, wake, or yield
// re-insertion) and leaves only by being scheduled. Blocking and finishing
// happen to the *running* thread, which is never in the heap, so arbitrary
// removal — the operation that would force an indexed heap — never occurs.
// Keys are snapshotted at push (exact, since they are immutable while the
// thread is in the heap), so every sift compare reads contiguous entries
// instead of dereferencing two VirtualThread pointers.

void Scheduler::grow_fifo() {
  const std::size_t cap = ready_fifo_.size();
  const std::size_t mask = cap - 1;
  std::vector<ReadyEntry> bigger(cap * 2);
  std::size_t n = 0;
  for (std::size_t i = fifo_head_; i != fifo_tail_; i = (i + 1) & mask) {
    bigger[n++] = ready_fifo_[i];
  }
  ready_fifo_ = std::move(bigger);
  fifo_head_ = 0;
  fifo_tail_ = n;
}

void Scheduler::push_ready(VirtualThread* t) {
  const ReadyEntry e{t->clock_, t->resched_seq_, t->id_, t};
  const std::size_t mask = ready_fifo_.size() - 1;
  // Fast lane: keys pushed in nondecreasing order append to the ring.
  if (fifo_head_ == fifo_tail_ ||
      !e.before(ready_fifo_[(fifo_tail_ - 1) & mask])) {
    if (((fifo_tail_ + 1) & mask) == fifo_head_) {
      grow_fifo();
      ready_fifo_[fifo_tail_] = e;
      ++fifo_tail_;
      return;
    }
    ready_fifo_[fifo_tail_] = e;
    fifo_tail_ = (fifo_tail_ + 1) & mask;
    return;
  }
  ready_.push_back(e);
  std::size_t i = ready_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!ready_[i].before(ready_[parent])) {
      break;
    }
    std::swap(ready_[i], ready_[parent]);
    i = parent;
  }
}

VirtualThread* Scheduler::pop_ready() {
  if (fifo_head_ != fifo_tail_ &&
      (ready_.empty() || ready_fifo_[fifo_head_].before(ready_.front()))) {
    VirtualThread* const t = ready_fifo_[fifo_head_].thread;
    fifo_head_ = (fifo_head_ + 1) & (ready_fifo_.size() - 1);
    return t;
  }
  VirtualThread* const top = ready_.front().thread;
  ready_.front() = ready_.back();
  ready_.pop_back();
  const std::size_t n = ready_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) {
      break;
    }
    const std::size_t r = l + 1;
    std::size_t best = l;
    if (r < n && ready_[r].before(ready_[l])) {
      best = r;
    }
    if (!ready_[best].before(ready_[i])) {
      break;
    }
    std::swap(ready_[i], ready_[best]);
    i = best;
  }
  return top;
}

// --- timer heap ----------------------------------------------------------

void Scheduler::push_timer(TimerEntry e) {
  timer_heap_.push_back(e);
  std::size_t i = timer_heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (timer_heap_[parent].due <= timer_heap_[i].due) {
      break;
    }
    std::swap(timer_heap_[i], timer_heap_[parent]);
    i = parent;
  }
}

void Scheduler::pop_timer() {
  timer_heap_.front() = timer_heap_.back();
  timer_heap_.pop_back();
  const std::size_t n = timer_heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) {
      break;
    }
    const std::size_t r = l + 1;
    std::size_t best = l;
    if (r < n && timer_heap_[r].due < timer_heap_[l].due) {
      best = r;
    }
    if (timer_heap_[i].due <= timer_heap_[best].due) {
      break;
    }
    std::swap(timer_heap_[i], timer_heap_[best]);
    i = best;
  }
}

const Scheduler::TimerEntry* Scheduler::timer_top() {
  while (!timer_heap_.empty()) {
    const TimerEntry& e = timer_heap_.front();
    if (e.gen == e.thread->timer_gen_) {
      return &e;
    }
    pop_timer();  // stale: the wait was signaled before the deadline
  }
  return nullptr;
}

// --- policy cross-check (pre-refactor reference scans) -------------------

VirtualThread* Scheduler::reference_pick() const {
  VirtualThread* best = nullptr;
  for (const auto& t : threads_) {
    if (t->state_ != VirtualThread::State::Runnable) {
      continue;
    }
    if (best == nullptr || ready_before(t.get(), best)) {
      best = t.get();
    }
  }
  return best;
}

void Scheduler::check_pick(VirtualThread* chosen) const {
  VirtualThread* const ref = reference_pick();
  if (ref != chosen) {
    throw SimError(
        "policy check: ready heap picked '" +
        (chosen != nullptr ? chosen->name_ : std::string{"<none>"}) +
        "' but the reference scan picked '" +
        (ref != nullptr ? ref->name_ : std::string{"<none>"}) + "'");
  }
}

void Scheduler::check_stress_bucket(
    const std::vector<VirtualThread*>& bucket) const {
  std::vector<VirtualThread*> ref;
  for (const auto& t : threads_) {
    if (t->state_ != VirtualThread::State::Runnable) {
      continue;
    }
    if (ref.empty() || t->clock_ < ref.front()->clock_) {
      ref.clear();
      ref.push_back(t.get());
    } else if (t->clock_ == ref.front()->clock_) {
      ref.push_back(t.get());
    }
  }
  if (ref != bucket) {
    throw SimError("policy check: stress tie bucket diverged from the "
                   "reference scan (" +
                   std::to_string(bucket.size()) + " vs " +
                   std::to_string(ref.size()) + " threads)");
  }
}

void Scheduler::check_timer_decision(bool fired, TimePoint due) const {
  bool any_runnable = false;
  TimePoint min_run;
  bool any_timer = false;
  TimePoint min_wake;
  for (const auto& t : threads_) {
    if (t->state_ == VirtualThread::State::Runnable &&
        (!any_runnable || t->clock_ < min_run)) {
      min_run = t->clock_;
      any_runnable = true;
    }
    if (t->state_ == VirtualThread::State::Blocked && t->wake_at_ &&
        (!any_timer || *t->wake_at_ < min_wake)) {
      min_wake = *t->wake_at_;
      any_timer = true;
    }
  }
  const bool ref_fires = any_timer && !(any_runnable && min_run < min_wake);
  if (ref_fires != fired || (fired && due != min_wake)) {
    throw SimError("policy check: timer-heap fire decision diverged from "
                   "the reference scan");
  }
}

// --- scheduling core -----------------------------------------------------

VirtualThread* Scheduler::pick_next() {
  if (ready_empty()) {
    return nullptr;
  }
  if (stress_) {
    // Stress mode: the min-clock policy still decides *which clocks* may
    // run, but ties are broken uniformly at random from the seeded stream.
    // Pop the whole equal-clock bucket and restore spawn order (the pops
    // surface in (seq, id) order) so the uniform draw lands on the same
    // thread the pre-refactor spawn-order scan would have offered.
    const TimePoint min_clock = ready_top().clock;
    tie_bucket_.clear();
    while (!ready_empty() && ready_top().clock == min_clock) {
      tie_bucket_.push_back(pop_ready());
    }
    std::sort(tie_bucket_.begin(), tie_bucket_.end(),
              [](const VirtualThread* a, const VirtualThread* b) {
                return a->id_ < b->id_;
              });
    if (policy_check_) {
      check_stress_bucket(tie_bucket_);
    }
    const std::size_t idx = stress_rng_.uniform_index(tie_bucket_.size());
    VirtualThread* const chosen = tie_bucket_[idx];
    for (VirtualThread* t : tie_bucket_) {
      if (t != chosen) {
        push_ready(t);
      }
    }
    return chosen;
  }
  if (policy_check_) {
    check_pick(ready_top().thread);
  }
  return pop_ready();
}

void Scheduler::enable_stress(std::uint64_t seed) {
  stress_ = true;
  stress_rng_ = Rng{seed};
}

void Scheduler::stress_point() {
  if (!stress_ || running_ == nullptr) {
    return;
  }
  // Half the time, hand the CPU back to the scheduler so an equal-clock
  // peer may be drawn; the other half, proceed — both orders are explored
  // across seeds.
  if (stress_rng_.bernoulli(0.5)) {
    Fiber::yield();
  }
}

bool Scheduler::fire_due_timers() {
  // A timer may only fire when no runnable thread has a strictly smaller
  // clock — otherwise that thread must run first to keep the schedule
  // time-ordered. Wake every timed-blocked thread sharing the earliest due
  // deadline; ties among the woken threads are then broken by the normal
  // pick_next policy (all wake at the deadline with resched_seq 0, so the
  // heap orders them by spawn id exactly as the linear scan did).
  const TimerEntry* const top = timer_top();
  if (top == nullptr ||
      (!ready_empty() && ready_top().clock < top->due)) {
    if (policy_check_) {
      check_timer_decision(false, TimePoint{});
    }
    return false;
  }
  const TimePoint due = top->due;
  if (policy_check_) {
    check_timer_decision(true, due);
  }
  while (const TimerEntry* e = timer_top()) {
    if (e->due != due) {
      break;
    }
    VirtualThread* const t = e->thread;
    pop_timer();
    t->state_ = VirtualThread::State::Runnable;
    t->timed_out_ = true;
    t->clock_ = max(t->clock_, due);
    t->wake_at_.reset();
    if (t->waiting_in_ != nullptr) {
      t->waiting_in_->remove_waiter(*t);
      t->waiting_in_ = nullptr;
    }
    t->wait_what_.clear();
    horizon_ = max(horizon_, t->clock_);
    ++events_;
    push_ready(t);
  }
  return true;
}

void Scheduler::run() {
  if (in_run_) {
    throw SimError("Scheduler::run is not reentrant");
  }
  in_run_ = true;
  while (true) {
    // No live timer can fire from an empty heap; skip the call in the
    // common all-runnable regime (the policy check still exercises the
    // full decision path when enabled).
    if (!timer_heap_.empty() || policy_check_) {
      fire_due_timers();
    }
    VirtualThread* const next = pick_next();
    if (next == nullptr) {
      bool any_blocked = false;
      std::string blocked;
      for (const auto& t : threads_) {
        if (t->state_ == VirtualThread::State::Blocked) {
          any_blocked = true;
          if (!blocked.empty()) {
            blocked += "; ";
          }
          blocked += "'" + t->name_ + "' on " +
                     (t->wait_what_.empty() ? std::string{"<unknown>"}
                                            : t->wait_what_);
        }
      }
      in_run_ = false;
      if (any_blocked) {
        throw SimError("simulation deadlock: blocked threads remain (" +
                       blocked + ")");
      }
      return;  // all finished
    }
    running_ = next;
    next->resched_seq_ = 0;  // the deprioritization is one-shot
    ++events_;
    try {
      next->fiber_->resume();
    } catch (...) {
      running_ = nullptr;
      in_run_ = false;
      throw;
    }
    running_ = nullptr;
    if (next->fiber_->finished()) {
      next->fiber_->recycle_stack();  // dead stack back to the pool
    } else if (next->state_ == VirtualThread::State::Runnable) {
      push_ready(next);  // yielded (advance/reschedule), still runnable
    }
    // else: blocked — it re-enters the heap via wake() or a timer firing.
  }
}

void Scheduler::sleep_for(Duration d) {
  if (d.is_negative()) {
    throw SimError("Scheduler::sleep_for: negative duration");
  }
  VirtualThread& self = current();
  if (d.is_zero()) {
    maybe_yield();
    return;
  }
  self.wake_at_ = self.clock_ + d;
  self.wait_what_ = "sleep_for";
  block_current();
  self.timed_out_ = false;  // the deadline firing *is* the normal wakeup
}

void Scheduler::reschedule() {
  VirtualThread& self = current();
  self.resched_seq_ = ++resched_epoch_;
  Fiber::yield();
}

void Scheduler::maybe_yield() {
  // Keep running while we are still (one of) the minimum-clock runnable
  // threads. O(1): the ready heap's top is the only candidate that could
  // preempt us, and the timer heap's top is the only deadline that could
  // be due. Under stress, an equal-clock tie is a coin-flip preemption
  // opportunity instead (same draw sequence as the pre-refactor scan).
  VirtualThread& self = *running_;
  // A timed-blocked thread whose deadline is due must be woken by the run
  // loop before we may proceed past it in time.
  if (const TimerEntry* e = timer_top();
      e != nullptr && e->due <= self.clock_) {
    Fiber::yield();
    return;
  }
  if (ready_empty()) {
    return;
  }
  const ReadyEntry& top = ready_top();
  if (top.clock < self.clock_) {
    Fiber::yield();
    return;
  }
  if (top.clock != self.clock_) {
    return;
  }
  if (stress_) {
    if (stress_rng_.bernoulli(0.5)) {
      Fiber::yield();
    }
    return;
  }
  // self.resched_seq_ is 0 (reset when scheduled), so an equal-clock peer
  // precedes us exactly when it never rescheduled and has a smaller id —
  // and any such peer would be the heap top.
  if (top.seq == 0 && top.id < self.id_) {
    Fiber::yield();
  }
}

void Scheduler::block_current() {
  VirtualThread& self = current();
  self.state_ = VirtualThread::State::Blocked;
  if (self.wake_at_) {
    push_timer({*self.wake_at_, ++self.timer_gen_, &self});
  }
  Fiber::yield();
}

void Scheduler::wake(VirtualThread& t, TimePoint at_least) {
  if (t.state_ != VirtualThread::State::Blocked) {
    throw SimError("Scheduler::wake: thread '" + t.name_ + "' is not blocked");
  }
  t.state_ = VirtualThread::State::Runnable;
  t.clock_ = max(t.clock_, at_least);
  // Signaled before any armed deadline fired: disarm the timer (the heap
  // entry goes stale and is skipped when it surfaces).
  if (t.wake_at_) {
    ++t.timer_gen_;
    t.wake_at_.reset();
  }
  t.waiting_in_ = nullptr;
  t.wait_what_.clear();
  horizon_ = max(horizon_, t.clock_);
  push_ready(&t);
}

void WaitList::wait(Scheduler& sched, std::string_view what) {
  sched.stress_point();  // wait points are where real schedules diverge
  VirtualThread& self = sched.current();
  self.waiting_in_ = this;
  self.wait_what_ = what;
  self.wait_slot_ = waiters_.size();
  waiters_.push_back(&self);
  sched.block_current();
  if (ConcurrencyHooks* h = sched.hooks()) {
    h->on_acquire(this, SyncKind::WaitList);
  }
}

bool WaitList::wait_for(Scheduler& sched, Duration timeout,
                        std::string_view what) {
  sched.stress_point();
  VirtualThread& self = sched.current();
  if (timeout <= Duration::zero()) {
    return false;  // deadline already passed; do not block
  }
  self.waiting_in_ = this;
  self.wait_what_ = what;
  self.wake_at_ = sched.now() + timeout;
  self.timed_out_ = false;
  self.wait_slot_ = waiters_.size();
  waiters_.push_back(&self);
  sched.block_current();
  const bool timed_out = self.timed_out_;
  self.timed_out_ = false;
  if (!timed_out) {
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(this, SyncKind::WaitList);
    }
  }
  return !timed_out;
}

void WaitList::remove_waiter(VirtualThread& t) {
  const std::size_t slot = t.wait_slot_;
  VirtualThread* const back = waiters_.back();
  waiters_[slot] = back;
  back->wait_slot_ = slot;
  waiters_.pop_back();
}

void WaitList::notify_all(Scheduler& sched, TimePoint at_least) {
  if (sched.in_thread()) {
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_release(this, SyncKind::WaitList);
    }
  }
  // wake() never re-enters this list (woken threads only run after the
  // yield below), so waking in place and clearing keeps the vector's
  // capacity for the next round instead of reallocating per notify.
  for (VirtualThread* w : waiters_) {
    sched.wake(*w, at_least);
  }
  waiters_.clear();
  // If a woken thread now has a smaller clock than the notifier, hand over.
  if (sched.in_thread()) {
    sched.maybe_yield();
  }
}

void WaitList::notify_one(Scheduler& sched, VirtualThread* target,
                          TimePoint at_least) {
  if (sched.in_thread()) {
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_release(this, SyncKind::WaitList);
    }
  }
  if (target != nullptr) {
    remove_waiter(*target);
    sched.wake(*target, at_least);
  }
  if (sched.in_thread()) {
    sched.maybe_yield();
  }
}

VirtualThread* WaitList::pick_waiter(Scheduler& sched, TimePoint at) {
  if (waiters_.empty()) {
    return nullptr;
  }
  if (sched.stress_enabled()) {
    if (waiters_.size() == 1) {
      return waiters_.front();
    }
    return waiters_[sched.stress_rng_.uniform_index(waiters_.size())];
  }
  // The waiter the pre-handoff barging race would have crowned: everyone
  // woke at max(own clock, notify time) and re-contended in id order, so
  // minimum (wake clock, id) won.
  VirtualThread* best = waiters_.front();
  TimePoint best_wake = max(best->clock_, at);
  for (std::size_t i = 1; i < waiters_.size(); ++i) {
    VirtualThread* const w = waiters_[i];
    const TimePoint wake = max(w->clock_, at);
    if (wake < best_wake || (wake == best_wake && w->id_ < best->id_)) {
      best = w;
      best_wake = wake;
    }
  }
  return best;
}

}  // namespace zc::sim
