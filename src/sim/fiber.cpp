#include "zc/sim/fiber.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

// ThreadSanitizer models each ucontext stack as a distinct logical thread;
// without these hooks it sees one OS thread hopping between stacks and
// corrupts its shadow state (false reports or crashes). Every stack switch
// below is announced with __tsan_switch_to_fiber immediately before the
// swapcontext that performs it.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define APUZC_TSAN_FIBERS 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define APUZC_TSAN_FIBERS 1
#endif

#ifdef APUZC_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber();
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace zc::sim {

namespace {
// Single-OS-thread simulator: plain globals are sufficient and keep the
// ucontext trampoline (which cannot take pointer arguments portably) simple.
Fiber* g_current = nullptr;
Fiber* g_starting = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current; }

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_{std::move(body)}, stack_{new char[stack_bytes]} {
  if (!body_) {
    throw std::invalid_argument("Fiber: empty body");
  }
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = nullptr;  // trampoline swaps back explicitly
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
#ifdef APUZC_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

// Destroying a suspended (started, unfinished) fiber releases the stack
// without unwinding it, so destructors of the fiber's live locals do not
// run. This only happens on error paths (e.g. tearing down a deadlocked
// simulation), where leaking those locals is preferable to aborting.
Fiber::~Fiber() {
#ifdef APUZC_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
  }
#endif
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->finished_ = true;
  g_current = nullptr;
#ifdef APUZC_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_resumer_, 0);
#endif
  swapcontext(&self->ctx_, &self->resumer_);
  // Never reached: a finished fiber is never resumed.
  std::abort();
}

void Fiber::resume() {
  if (finished_) {
    throw std::logic_error("Fiber::resume on finished fiber");
  }
  Fiber* const prev = g_current;
  g_current = this;
  if (!started_) {
    started_ = true;
    g_starting = this;
  }
#ifdef APUZC_TSAN_FIBERS
  tsan_resumer_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  if (swapcontext(&resumer_, &ctx_) != 0) {
#ifdef APUZC_TSAN_FIBERS
    __tsan_switch_to_fiber(tsan_resumer_, 0);
#endif
    g_current = prev;
    throw std::runtime_error("Fiber: swapcontext failed");
  }
  g_current = prev;
  if (finished_ && error_) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    std::rethrow_exception(err);
  }
}

void Fiber::yield() {
  Fiber* const self = g_current;
  if (self == nullptr) {
    throw std::logic_error("Fiber::yield outside any fiber");
  }
  g_current = nullptr;
#ifdef APUZC_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_resumer_, 0);
#endif
  swapcontext(&self->ctx_, &self->resumer_);
}

}  // namespace zc::sim
