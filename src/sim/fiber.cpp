#include "zc/sim/fiber.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

// ThreadSanitizer models each ucontext stack as a distinct logical thread;
// without these hooks it sees one OS thread hopping between stacks and
// corrupts its shadow state (false reports or crashes). Every stack switch
// below is announced with __tsan_switch_to_fiber immediately before the
// swapcontext that performs it.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define APUZC_TSAN_FIBERS 1
#endif
#if __has_feature(address_sanitizer)
#define APUZC_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define APUZC_TSAN_FIBERS 1
#elif defined(__SANITIZE_ADDRESS__)
#define APUZC_ASAN_FIBERS 1
#endif

// Steady-state switches use _setjmp/_longjmp (no sigprocmask syscall, ~40x
// cheaper than swapcontext); makecontext/swapcontext only bootstraps each
// fiber's first entry onto its fresh stack. Sanitizer builds keep
// swapcontext for *every* switch: ASan's and TSan's interceptors model the
// stack change there, whereas a cross-stack _longjmp would sidestep their
// shadow bookkeeping (ASan's longjmp handler assumes the jump stays on the
// current thread's stack).
#if !defined(APUZC_TSAN_FIBERS) && !defined(APUZC_ASAN_FIBERS)
#define APUZC_FAST_SWITCH 1
#endif

#ifdef APUZC_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber();
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace zc::sim {

namespace {
// Single-OS-thread simulator: plain globals are sufficient and keep the
// ucontext trampoline (which cannot take pointer arguments portably) simple.
Fiber* g_current = nullptr;
Fiber* g_starting = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current; }

std::unique_ptr<char[]> FiberStackPool::acquire(std::size_t bytes) {
  if (bytes == block_bytes_ && !free_.empty()) {
    std::unique_ptr<char[]> stack = std::move(free_.back());
    free_.pop_back();
    return stack;
  }
  return std::unique_ptr<char[]>{new char[bytes]};
}

void FiberStackPool::release(std::unique_ptr<char[]> stack,
                             std::size_t bytes) {
  if (free_.empty()) {
    block_bytes_ = bytes;  // first release fixes the pool's block size
  } else if (bytes != block_bytes_) {
    return;  // odd-sized stack: let unique_ptr free it
  }
  free_.push_back(std::move(stack));
}

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes,
             FiberStackPool* pool)
    : body_{std::move(body)},
      stack_{pool != nullptr ? pool->acquire(stack_bytes)
                             : std::unique_ptr<char[]>{new char[stack_bytes]}},
      pool_{pool},
      stack_bytes_{stack_bytes} {
  if (!body_) {
    throw std::invalid_argument("Fiber: empty body");
  }
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = nullptr;  // trampoline swaps back explicitly
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
#ifdef APUZC_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

// Destroying a suspended (started, unfinished) fiber releases the stack
// without unwinding it, so destructors of the fiber's live locals do not
// run. This only happens on error paths (e.g. tearing down a deadlocked
// simulation), where leaking those locals is preferable to aborting.
Fiber::~Fiber() {
#ifdef APUZC_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
  }
#endif
}

void Fiber::recycle_stack() {
  if (!finished_ || stack_ == nullptr) {
    return;
  }
  if (pool_ != nullptr) {
    pool_->release(std::move(stack_), stack_bytes_);
  } else {
    stack_.reset();
  }
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  try {
    self->body_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->finished_ = true;
  g_current = nullptr;
#ifdef APUZC_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_resumer_, 0);
#endif
#ifdef APUZC_FAST_SWITCH
  _longjmp(self->resumer_jmp_, 1);
#else
  swapcontext(&self->ctx_, &self->resumer_);
#endif
  // Never reached: a finished fiber is never resumed.
  std::abort();
}

void Fiber::resume() {
  if (finished_) {
    throw std::logic_error("Fiber::resume on finished fiber");
  }
  Fiber* const prev = g_current;
  g_current = this;
  const bool first = !started_;
  if (first) {
    started_ = true;
    g_starting = this;
  }
#ifdef APUZC_TSAN_FIBERS
  tsan_resumer_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#ifdef APUZC_FAST_SWITCH
  if (_setjmp(resumer_jmp_) == 0) {
    if (first) {
      // First entry must run on the fresh stack; makecontext/swapcontext
      // is the only portable bootstrap. The fiber leaves via _longjmp to
      // resumer_jmp_, so the swapcontext never returns normally.
      swapcontext(&resumer_, &ctx_);
      std::abort();  // unreachable
    }
    _longjmp(jmp_, 1);
  }
#else
  if (swapcontext(&resumer_, &ctx_) != 0) {
#ifdef APUZC_TSAN_FIBERS
    __tsan_switch_to_fiber(tsan_resumer_, 0);
#endif
    g_current = prev;
    throw std::runtime_error("Fiber: swapcontext failed");
  }
#endif
  g_current = prev;
  if (finished_ && error_) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    std::rethrow_exception(err);
  }
}

void Fiber::yield() {
  Fiber* const self = g_current;
  if (self == nullptr) {
    throw std::logic_error("Fiber::yield outside any fiber");
  }
  g_current = nullptr;
#ifdef APUZC_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_resumer_, 0);
#endif
#ifdef APUZC_FAST_SWITCH
  if (_setjmp(self->jmp_) == 0) {
    _longjmp(self->resumer_jmp_, 1);
  }
#else
  swapcontext(&self->ctx_, &self->resumer_);
#endif
}

}  // namespace zc::sim
