#include "zc/sim/jitter.hpp"

namespace zc::sim {

Duration JitterModel::apply_noise(Duration d) {
  double factor = 1.0;
  if (params_.sigma > 0.0) {
    factor *= rng_.lognormal_unit_mean(params_.sigma);
  }
  if (params_.outlier_prob > 0.0 && rng_.bernoulli(params_.outlier_prob)) {
    factor *= params_.outlier_factor;
  }
  if (factor == 1.0) {
    return d;
  }
  return d * factor;
}

}  // namespace zc::sim
