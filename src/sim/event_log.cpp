#include "zc/sim/event_log.hpp"

#include <ostream>
#include <utility>

namespace zc::sim {

void EventLog::add(TimePoint t, std::string category, std::string text) {
  if (!enabled_ || capacity_ == 0) {
    return;
  }
  Event ev{t, std::move(category), std::move(text)};
  if (events_.size() < capacity_) {
    events_.push_back(std::move(ev));
    return;
  }
  events_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> EventLog::snapshot() const {
  std::vector<Event> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

std::vector<Event> EventLog::by_category(const std::string& cat) const {
  std::vector<Event> out;
  for (const Event& e : snapshot()) {
    if (e.category == cat) {
      out.push_back(e);
    }
  }
  return out;
}

void EventLog::clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

void EventLog::dump(std::ostream& os) const {
  for (const Event& e : snapshot()) {
    os << e.time.to_string() << " [" << e.category << "] " << e.text << '\n';
  }
}

}  // namespace zc::sim
