#include "zc/adapt/policy.hpp"

#include <algorithm>
#include <limits>

namespace zc::adapt {

PolicyEngine::PolicyEngine(const apu::CostParams& costs,
                           const apu::AdaptParams& params, int devices,
                           std::uint64_t page_bytes, bool xnack_enabled)
    : costs_{costs},
      params_{params},
      page_bytes_{page_bytes},
      xnack_enabled_{xnack_enabled},
      caches_(static_cast<std::size_t>(devices)) {}

PredictedCosts PolicyEngine::predict(const RegionFeatures& f) const {
  // Derived page populations. Pages the CPU never touched cannot be in the
  // GPU page table either (GPU demand faults materialize the CPU side too),
  // so non-CPU-resident pages are a subset of the GPU-absent ones.
  const std::uint64_t absent_nonres =
      f.pages - std::min(f.cpu_resident_pages, f.pages);
  const std::uint64_t absent_res =
      f.gpu_absent_pages > absent_nonres ? f.gpu_absent_pages - absent_nonres
                                         : 0;
  const std::uint64_t present = f.pages - std::min(f.gpu_absent_pages, f.pages);

  PredictedCosts out;

  // Zero-copy: every GPU-absent page demand-faults on first touch; pages
  // the CPU never created additionally pay one-at-a-time materialization.
  // Without XNACK the kernel would simply fault fatally — never choose it.
  if (xnack_enabled_) {
    out.zero_copy_us =
        static_cast<double>(absent_res) * costs_.xnack_fault_resident.us() +
        static_cast<double>(absent_nonres) *
            (costs_.xnack_fault_resident + costs_.page_materialize).us();
  } else {
    out.zero_copy_us = std::numeric_limits<double>::infinity();
  }

  // Eager prefault: one svm_attributes_set over the range, priced exactly
  // like the HSA layer prices it (insert / bulk-populate / verify).
  out.eager_us =
      costs_.prefault_syscall_base.us() +
      static_cast<double>(absent_res) * costs_.prefault_insert_per_page.us() +
      static_cast<double>(absent_nonres) *
          (costs_.prefault_insert_per_page + costs_.prefault_populate_per_page)
              .us() +
      static_cast<double>(present) * costs_.prefault_check_per_page.us();

  // Remote-homed pages keep their cost under any zero-copy handling: every
  // kernel streams them across the fabric at the wide-link bandwidth. A
  // DMA copy pays the link once (already in copy_us via the map transfers)
  // and then reads from local pool storage, so only the zero-copy-style
  // predictions carry the recurring surcharge.
  if (f.remote_pages > 0 && costs_.xgmi_wide_bandwidth_bytes_per_s > 0.0) {
    const double remote_us =
        static_cast<double>(f.remote_pages * page_bytes_) /
        costs_.xgmi_wide_bandwidth_bytes_per_s * 1e6;
    out.zero_copy_us += remote_us;
    out.eager_us += remote_us;
  }

  // DDR-spilled pages must promote back to HBM before the GPU can use them
  // at speed; both zero-copy handlings pay that per-page driver work on
  // first use (fault-in or prefault), while DmaCopy allocates fresh pool
  // storage and copies over the spill.
  if (f.ddr_pages > 0) {
    const double promote_us =
        static_cast<double>(f.ddr_pages) * costs_.promote_per_page.us();
    out.zero_copy_us += promote_us;
    out.eager_us += promote_us;
  }

  // DMA copy: a device pool allocation (bulk page population) plus the
  // transfers the map type implies.
  const double copy_us =
      costs_.copy_setup.us() + static_cast<double>(f.range.bytes) /
                                   costs_.copy_bandwidth_bytes_per_s * 1e6;
  out.copy_us = costs_.pool_alloc_base.us() +
                static_cast<double>(f.pages) * costs_.bulk_page_populate.us() +
                (f.copies_in ? copy_us : 0.0) + (f.copies_out ? copy_us : 0.0);
  // Tenant-aware pressure pricing: the fuller the service's admission
  // budget, the more a fresh pool allocation crowds co-resident tenants'
  // zero-copy pages, so DmaCopy pays a proportional surcharge. A soft
  // gradient, unlike the hard infinity overrides below.
  if (f.tenant_pressure > 0.0) {
    out.copy_us *=
        1.0 + params_.tenant_pressure_surcharge * f.tenant_pressure;
  }
  // Under memory pressure the pool allocation would likely fail and the
  // runtime would degrade to zero-copy anyway — after paying the failed
  // driver round trip. Price DmaCopy out entirely.
  if (f.memory_pressure) {
    out.copy_us = std::numeric_limits<double>::infinity();
  }
  // An open circuit breaker pins the device to its safest handling: no DMA
  // engines, no demand-fault storms — eager prefault only.
  if (f.breaker_open) {
    out.copy_us = std::numeric_limits<double>::infinity();
    out.zero_copy_us = std::numeric_limits<double>::infinity();
  }

  return out;
}

PolicyEngine::Cache::iterator PolicyEngine::find_containing(
    Cache& cache, mem::AddrRange range) {
  auto it = cache.upper_bound(range.base.value);
  if (it == cache.begin()) {
    return cache.end();
  }
  --it;
  const std::uint64_t entry_end = it->first + it->second.bytes;
  if (range.base.value >= it->first &&
      range.base.value + range.bytes <= entry_end) {
    return it;
  }
  return cache.end();
}

void PolicyEngine::evict_if_needed(Cache& cache) {
  if (cache.size() <= params_.max_cache_entries) {
    return;
  }
  // Deterministic eviction: the least recently used entry that is not
  // pinned by an active mapping.
  auto victim = cache.end();
  for (auto it = cache.begin(); it != cache.end(); ++it) {
    if (it->second.active_maps > 0) {
      continue;
    }
    if (victim == cache.end() ||
        it->second.last_used < victim->second.last_used) {
      victim = it;
    }
  }
  if (victim != cache.end()) {
    cache.erase(victim);
    ++evictions_;
  }
}

Outcome PolicyEngine::decide(int device, const RegionFeatures& features) {
  Cache& cache = caches_.at(static_cast<std::size_t>(device));
  ++seqno_;
  auto it = find_containing(cache, features.range);

  if (it != cache.end()) {
    CacheEntry& entry = it->second;
    entry.last_used = seqno_;
    ++entry.maps_since_eval;
    const bool pinned = entry.active_maps > 0;
    ++entry.active_maps;
    if (pinned || entry.maps_since_eval <= params_.hysteresis_maps) {
      ++cache_hits_;
      return Outcome{.decision = entry.decision, .fresh = false};
    }
    // Hysteresis window elapsed and the range is quiescent: re-evaluate,
    // but switch only on a decisive margin.
    ++evaluations_;
    const PredictedCosts costs = predict(features);
    const Decision best = costs.best();
    Outcome out{.decision = entry.decision, .fresh = true, .costs = costs};
    if (best != entry.decision &&
        costs.cost_of(entry.decision) > costs.cost_of(best) * params_.switch_margin) {
      entry.decision = best;
      out.decision = best;
      out.revised = true;
      ++revisions_;
    }
    entry.maps_since_eval = 0;
    return out;
  }

  // Cache miss: evaluate and remember.
  ++evaluations_;
  const PredictedCosts costs = predict(features);
  const Decision decision = costs.best();
  CacheEntry entry;
  entry.bytes = features.range.bytes;
  entry.decision = decision;
  entry.active_maps = 1;
  entry.last_used = seqno_;
  cache.insert_or_assign(features.range.base.value, entry);
  evict_if_needed(cache);
  return Outcome{.decision = decision, .fresh = true, .costs = costs};
}

void PolicyEngine::release(int device, mem::AddrRange range) {
  Cache& cache = caches_.at(static_cast<std::size_t>(device));
  auto it = find_containing(cache, range);
  if (it != cache.end() && it->second.active_maps > 0) {
    --it->second.active_maps;
  }
}

void PolicyEngine::forget(mem::AddrRange range) {
  for (Cache& cache : caches_) {
    auto it = cache.lower_bound(range.base.value);
    // Entries starting before the freed range can still overlap it.
    if (it != cache.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.bytes > range.base.value) {
        it = prev;
      }
    }
    while (it != cache.end() && it->first < range.base.value + range.bytes) {
      it = cache.erase(it);
    }
  }
}

}  // namespace zc::adapt
